(* Multi-shot BB: the replicated log. *)

open Mewc_sim
open Mewc_core

let cfg = Test_util.cfg

let propose pid i = Printf.sprintf "cmd-%d-by-p%d" i pid

let correct_logs (o : Repeated_bb.outcome) =
  Array.to_list o.logs
  |> List.mapi (fun p l -> (p, l))
  |> List.filter (fun (p, _) -> not (List.mem p o.corrupted))

let check_logs_agree o =
  match correct_logs o with
  | [] -> Alcotest.fail "no correct replicas"
  | (_, reference) :: rest ->
    List.iter
      (fun (p, l) ->
        if l <> reference then Alcotest.failf "replica p%d's log diverges" p)
      rest;
    reference

let honest_log () =
  let n = 9 in
  let o =
    Repeated_bb.run ~cfg:(cfg n) ~length:5 ~propose
      ~adversary:(Adversary.const (Adversary.honest ~name:"h"))
      ()
  in
  let log = check_logs_agree o in
  Array.iteri
    (fun i entry ->
      let expected = Repeated_bb.Committed (propose (i mod n) i) in
      match entry with
      | Some e when Repeated_bb.equal_entry e expected -> ()
      | Some e ->
        Alcotest.failf "slot %d: got %s" i (Format.asprintf "%a" Repeated_bb.pp_entry e)
      | None -> Alcotest.failf "slot %d undecided" i)
    log

let byzantine_proposer_skipped () =
  (* The proposer of slot 2 crashes just before its slot: that slot commits
     ⊥ (skipped); all other slots commit their proposers' commands. *)
  let n = 9 in
  let stride = Repeated_bb.stride (cfg n) in
  let o =
    Repeated_bb.run ~cfg:(cfg n) ~length:5 ~propose
      ~adversary:
        (Adversary.const (Adversary.crash ~at:(2 * stride) ~victims:[ 2 ] ()))
      ()
  in
  let log = check_logs_agree o in
  (match log.(2) with
  | Some Repeated_bb.Skipped -> ()
  | Some e ->
    Alcotest.failf "slot 2: expected skip, got %s"
      (Format.asprintf "%a" Repeated_bb.pp_entry e)
  | None -> Alcotest.fail "slot 2 undecided");
  List.iter
    (fun i ->
      match log.(i) with
      | Some (Repeated_bb.Committed v) ->
        Alcotest.(check string) (Printf.sprintf "slot %d" i) (propose (i mod n) i) v
      | _ -> Alcotest.failf "slot %d not committed" i)
    [ 0; 1; 3; 4 ]

let early_crash_tolerated () =
  let n = 9 in
  let o =
    Repeated_bb.run ~cfg:(cfg n) ~length:4 ~propose
      ~adversary:(Adversary.const (Adversary.crash ~victims:[ 5; 6 ] ()))
      ()
  in
  let log = check_logs_agree o in
  Array.iteri
    (fun i e ->
      if e = None then Alcotest.failf "slot %d undecided" i)
    log

let words_amortize_linearly () =
  (* The per-slot cost must not grow with the log length: each BB instance
     is independent and adaptive. *)
  let n = 9 in
  let per_slot length =
    let o =
      Repeated_bb.run ~cfg:(cfg n) ~length ~propose
        ~adversary:(Adversary.const (Adversary.honest ~name:"h"))
        ()
    in
    o.Repeated_bb.words_per_slot
  in
  let a = per_slot 2 and b = per_slot 8 in
  Alcotest.(check bool)
    (Printf.sprintf "per-slot cost flat (%.1f vs %.1f)" a b)
    true
    (abs_float (a -. b) /. a < 0.05)

(* ---- pipelining is a scheduling policy, not a protocol change ---------- *)

(* The oracle equality: on the same seed, every pipeline offset must
   produce the same final logs as the sequential schedule, and every
   instance must decide at the same point of its own [stride]-window —
   only the wall-slot placement of the windows moves. *)
let pipelined_logs_match_oracle () =
  let n = 9 in
  let c = cfg n in
  let stride = Repeated_bb.stride c in
  let length = 6 in
  let run ?offset adversary =
    Repeated_bb.run ~cfg:c ~seed:5L ?offset ~length ~propose ~adversary ()
  in
  List.iter
    (fun (name, adversary) ->
      let oracle = run adversary in
      List.iter
        (fun offset ->
          let o = run ~offset adversary in
          if o.Repeated_bb.logs <> oracle.Repeated_bb.logs then
            Alcotest.failf "%s offset=%d: logs diverge from the oracle" name
              offset;
          (* decision slots, re-based to each instance's start, must match
             the oracle's re-based decision slots exactly. *)
          let rebase off (per_proc : int option array array) =
            Array.map
              (Array.mapi (fun i d -> Option.map (fun s -> s - (i * off)) d))
              per_proc
          in
          if
            rebase offset o.Repeated_bb.decided_slots
            <> rebase stride oracle.Repeated_bb.decided_slots
          then
            Alcotest.failf "%s offset=%d: relative decision slots diverge" name
              offset;
          Alcotest.(check int)
            (Printf.sprintf "%s offset=%d horizon" name offset)
            (((length - 1) * offset) + stride)
            o.Repeated_bb.slots)
        [ 1; 2; stride / 2; stride ])
    [
      ("honest", Adversary.const (Adversary.honest ~name:"h"));
      ("crash", Adversary.const (Adversary.crash ~victims:[ 5; 6 ] ()));
    ]

let byzantine_proposer_skipped_at_its_slots_pipelined () =
  (* Round-robin: a proposer crashed from slot 0 skips exactly the log
     slots it owns (i mod n), at any pipeline depth. *)
  let n = 5 in
  let c = cfg n in
  let length = 12 in
  let victim = 2 in
  List.iter
    (fun offset ->
      let o =
        Repeated_bb.run ~cfg:c ~seed:3L ~offset ~length ~propose
          ~adversary:(Adversary.const (Adversary.crash ~victims:[ victim ] ()))
          ()
      in
      let log = check_logs_agree o in
      Array.iteri
        (fun i entry ->
          match (entry, i mod n = victim) with
          | Some Repeated_bb.Skipped, true -> ()
          | Some (Repeated_bb.Committed v), false ->
            Alcotest.(check string)
              (Printf.sprintf "offset=%d slot %d" offset i)
              (propose (i mod n) i) v
          | Some e, _ ->
            Alcotest.failf "offset=%d slot %d: unexpected %s" offset i
              (Format.asprintf "%a" Repeated_bb.pp_entry e)
          | None, _ -> Alcotest.failf "offset=%d slot %d undecided" offset i)
        log)
    [ 1; Repeated_bb.stride c ]

let logs_invariant_under_engine_knobs () =
  (* scheduler × shards must be observationally invisible to the log,
     pipelined or not — same invariant the engine-diff suite proves for
     the one-shot protocols. *)
  let n = 9 in
  let c = cfg n in
  let run ~offset ~scheduler ~shards =
    let o =
      Repeated_bb.run ~cfg:c ~seed:11L ~offset ~length:4 ~propose
        ~options:{ Engine.default_options with Engine.scheduler; shards }
        ~adversary:(Adversary.const (Adversary.crash ~victims:[ 1 ] ()))
        ()
    in
    (o.Repeated_bb.logs, o.Repeated_bb.decided_slots, o.Repeated_bb.words)
  in
  List.iter
    (fun offset ->
      let base = run ~offset ~scheduler:`Legacy ~shards:1 in
      List.iter
        (fun (scheduler, shards) ->
          if run ~offset ~scheduler ~shards <> base then
            Alcotest.failf "offset=%d %s shards=%d diverges" offset
              (Engine.scheduler_to_string scheduler)
              shards)
        [ (`Legacy, 2); (`Event_driven, 1); (`Event_driven, 2) ])
    [ 2; Repeated_bb.stride c ]

let () =
  Alcotest.run "repeated BB (replicated log)"
    [
      ( "log",
        [
          Alcotest.test_case "honest log" `Quick honest_log;
          Alcotest.test_case "byzantine proposer skipped" `Quick
            byzantine_proposer_skipped;
          Alcotest.test_case "crashes tolerated" `Quick early_crash_tolerated;
          Alcotest.test_case "per-slot cost flat" `Slow words_amortize_linearly;
        ] );
      ( "pipelining",
        [
          Alcotest.test_case "pipelined logs == oracle" `Quick
            pipelined_logs_match_oracle;
          Alcotest.test_case "byzantine proposer skipped at its slots" `Quick
            byzantine_proposer_skipped_at_its_slots_pipelined;
          Alcotest.test_case "invariant under scheduler x shards" `Quick
            logs_invariant_under_engine_knobs;
        ] );
    ]
