(* CLI argument parsing for every mewc subcommand, exercised through the
   real binary, pinning the exit-code contract: 0 success, 1 misuse or
   operational failure, 2 a stall (safety held, some correct process never
   decided), 3 a finding (fuzz violation / perf regression / unsafe chaos
   cell), 124 parse errors — both cmdliner's own and ours (malformed or
   foreign-schema JSON inputs).

   The binary is a declared dune dependency of this test, so it is always
   present at ../bin/mewc.exe relative to the test's working directory. *)

let mewc = Filename.concat (Filename.concat ".." "bin") "mewc.exe"

(* Run [mewc args], muting output; returns the exit code. *)
let run args =
  Sys.command (Printf.sprintf "%s %s >/dev/null 2>&1" (Filename.quote mewc) args)

(* Run [mewc args] and capture stdout. *)
let run_out args =
  let tmp = Filename.temp_file "mewc-cli" ".out" in
  Fun.protect
    ~finally:(fun () -> Sys.remove tmp)
    (fun () ->
      let code =
        Sys.command
          (Printf.sprintf "%s %s >%s 2>/dev/null" (Filename.quote mewc) args
             (Filename.quote tmp))
      in
      (code, In_channel.with_open_text tmp In_channel.input_all))

let check_code name expected args =
  Alcotest.test_case name `Quick (fun () ->
      Alcotest.(check int) (Printf.sprintf "mewc %s" args) expected (run args))

let cli_error = 124

let help_cases =
  [
    check_code "mewc --help" 0 "--help";
    check_code "run --help" 0 "run --help";
    check_code "trace --help" 0 "trace --help";
    check_code "bench --help" 0 "bench --help";
    check_code "fuzz --help" 0 "fuzz --help";
    check_code "perf --help" 0 "perf --help";
    check_code "perf diff --help" 0 "perf diff --help";
    check_code "chaos --help" 0 "chaos --help";
    check_code "throughput --help" 0 "throughput --help";
    check_code "report --help" 0 "report --help";
    check_code "perf baseline --help" 0 "perf baseline --help";
    check_code "wire --help" 0 "wire --help";
  ]

let error_cases =
  [
    check_code "unknown subcommand" cli_error "frobnicate";
    check_code "unknown flag" cli_error "run --bogus-flag";
    check_code "missing required -p" cli_error "run";
    check_code "bad protocol name" cli_error "run -p not-a-protocol";
    check_code "bad trace format" cli_error "trace -p bb --format yaml";
    check_code "non-int count" cli_error "fuzz --target weak-ba --count many";
    check_code "replay of missing file" cli_error "fuzz --replay /nonexistent.json";
    check_code "replay-dir of missing dir" cli_error "fuzz --replay-dir /nonexistent-dir";
  ]

let test_fuzz_requires_mode () =
  (* no --target and no mode flag: a usage error from fuzz itself, not
     cmdliner — distinct code 1 *)
  Alcotest.(check int) "fuzz alone" 1 (run "fuzz")

let test_fuzz_list () =
  let code, out = run_out "fuzz --list" in
  Alcotest.(check int) "exit 0" 0 code;
  List.iter
    (fun name ->
      Alcotest.(check bool) name true
        (List.mem name
           (List.concat_map
              (fun l -> String.split_on_char ' ' l)
              (String.split_on_char '\n' out))))
    [ "fallback"; "weak-ba"; "weak-ba-ablated"; "bb"; "binary-bb"; "strong-ba" ]

let test_fuzz_clean_campaign () =
  (* tiny sound campaign: exits 0 (no violation) *)
  Alcotest.(check int) "clean exit" 0
    (run "fuzz --target weak-ba --count 8 --seed 3 -j 2")

let test_fuzz_unknown_target () =
  Alcotest.(check int) "unknown target" 1 (run "fuzz --target nonesuch")

let test_fuzz_rejects_tampered_entry () =
  (* a well-formed corpus entry whose recorded violation cannot reproduce *)
  let tmp = Filename.temp_file "mewc-cli" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove tmp)
    (fun () ->
      Out_channel.with_open_text tmp (fun oc ->
          output_string oc
            {|{"schema":"mewc-fuzz/1","target":"weak-ba","n":9,"t":4,
               "scenario":{"seed":"1","shuffle":null,"corruptions":[]},
               "violation":{"monitor":"agreement","slot":3,"reason":"planted"}}|});
      Alcotest.(check int) "tampered entry rejected" 1
        (run (Printf.sprintf "fuzz --replay %s" (Filename.quote tmp))))

let test_fuzz_rejects_foreign_schema () =
  let tmp = Filename.temp_file "mewc-cli" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove tmp)
    (fun () ->
      Out_channel.with_open_text tmp (fun oc ->
          output_string oc {|{"schema":"mewc-trace/2","events":[]}|});
      (* a parse-level rejection, so the parse-error code, not misuse *)
      Alcotest.(check int) "foreign schema rejected" 124
        (run (Printf.sprintf "fuzz --replay %s" (Filename.quote tmp))))

(* ---- --scheduler --------------------------------------------------------- *)

let scheduler_cases =
  [
    check_code "run accepts legacy" 0 "run -p weak-ba -n 9 --scheduler legacy";
    check_code "run accepts event-driven" 0
      "run -p weak-ba -n 9 --scheduler event-driven";
    (* the flag is validated in the command body, so an unknown value is a
       misuse (1), not a cmdliner parse error (124) *)
    check_code "run rejects unknown scheduler" 1
      "run -p weak-ba -n 9 --scheduler nonesuch";
    check_code "bench rejects unknown scheduler" 1
      "bench --smoke --scheduler nonesuch";
    check_code "bench accepts event-driven" 0
      "bench --smoke --scheduler event-driven";
    check_code "baselines reject event-driven" 1
      "run -p dolev-strong -n 5 --scheduler event-driven";
    check_code "bench --smoke --frontier is misuse" 1 "bench --smoke --frontier";
  ]

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let test_scheduler_default_documented () =
  (* --help must say what you get when the flag is absent. *)
  List.iter
    (fun cmd ->
      let code, out = run_out (cmd ^ " --help") in
      Alcotest.(check int) (cmd ^ " --help exits 0") 0 code;
      Alcotest.(check bool) (cmd ^ " --help names --scheduler") true
        (contains out "--scheduler");
      Alcotest.(check bool) (cmd ^ " --help documents the default") true
        (contains out "absent=legacy" || contains out "default"))
    [ "run"; "bench" ]

let test_scheduler_same_decisions () =
  let strip_timing out =
    (* `run` prints no wall-clock, so whole-output equality is fair game *)
    out
  in
  let code_l, out_l = run_out "run -p weak-ba -n 9 -a crash -f 2 --scheduler legacy" in
  let code_e, out_e =
    run_out "run -p weak-ba -n 9 -a crash -f 2 --scheduler event-driven"
  in
  Alcotest.(check int) "legacy exit" 0 code_l;
  Alcotest.(check int) "event exit" 0 code_e;
  Alcotest.(check string) "identical output" (strip_timing out_l)
    (strip_timing out_e)

(* ---- trace cone / unsupported combinations ------------------------------ *)

let trace_cases =
  [
    check_code "cone out of range" 1 "trace -p bb -n 9 --cone 99";
    check_code "cone on a baseline protocol" 1 "trace -p dolev-strong --cone 0";
    check_code "profile on a baseline protocol" 1 "run -p dolev-strong --profile";
  ]

let test_trace_cone_dot_is_graphviz () =
  let code, out = run_out "trace -p weak-ba -n 9 -a crash -f 2 --cone 5 --dot" in
  Alcotest.(check int) "exit 0" 0 code;
  Alcotest.(check bool) "digraph header" true
    (String.length out > 0
    && String.starts_with ~prefix:"digraph causality {" out);
  Alcotest.(check bool) "closing brace" true
    (String.length out >= 2 && String.sub out (String.length out - 2) 2 = "}\n")

(* ---- perf: ledger surface ------------------------------------------------ *)

let in_temp_ledger f =
  let tmp = Filename.temp_file "mewc-cli-ledger" ".json" in
  Sys.remove tmp;
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists tmp then Sys.remove tmp)
    (fun () -> f tmp)

let test_perf_diff_requires_selectors () =
  in_temp_ledger (fun l ->
      Alcotest.(check int) "no selectors" 1
        (run (Printf.sprintf "perf diff --ledger %s" (Filename.quote l))))

let test_perf_rejects_malformed_ledger () =
  in_temp_ledger (fun l ->
      Out_channel.with_open_text l (fun oc -> output_string oc "not json");
      Alcotest.(check int) "malformed json" 124
        (run (Printf.sprintf "perf list --ledger %s" (Filename.quote l))))

let test_perf_rejects_foreign_schema () =
  in_temp_ledger (fun l ->
      Out_channel.with_open_text l (fun oc ->
          output_string oc {|{"schema":"mewc-perf/1","entries":[]}|});
      Alcotest.(check int) "foreign schema" 124
        (run (Printf.sprintf "perf list --ledger %s" (Filename.quote l))))

let test_perf_missing_entry_is_misuse () =
  in_temp_ledger (fun l ->
      (* an empty (absent) ledger parses fine; selecting from it is misuse *)
      Alcotest.(check int) "index out of range" 1
        (run (Printf.sprintf "perf diff --ledger %s 0 1" (Filename.quote l))))

(* The end-to-end exit-code contract of `perf diff`: append one smoke entry,
   self-diff to exit 0, then plant a doubled-words entry via the Ledger
   library and require exit 3. *)
let test_perf_append_then_diff_codes () =
  in_temp_ledger (fun l ->
      let ql = Filename.quote l in
      Alcotest.(check int) "append" 0
        (run
           (Printf.sprintf
              "perf append --smoke --ledger %s --rev aaa --date 2026-08-06" ql));
      Alcotest.(check int) "self-diff exits 0" 0
        (run (Printf.sprintf "perf diff --ledger %s -- -1 -1" ql));
      let entries =
        match Mewc_core.Ledger.load l with
        | Ok es -> es
        | Error e -> Alcotest.fail e
      in
      let doubled =
        match entries with
        | [ e ] ->
          {
            e with
            Mewc_core.Ledger.rev = "bbb";
            rows =
              List.map
                (fun (r : Mewc_core.Sweep.row) ->
                  { r with Mewc_core.Sweep.words = 2 * r.Mewc_core.Sweep.words })
                e.Mewc_core.Ledger.rows;
          }
        | _ -> Alcotest.fail "expected exactly one entry"
      in
      Mewc_core.Ledger.save l (entries @ [ doubled ]);
      Alcotest.(check int) "doubled words exit 3" 3
        (run (Printf.sprintf "perf diff --ledger %s aaa bbb" ql));
      Alcotest.(check int) "improvement exits 0" 0
        (run (Printf.sprintf "perf diff --ledger %s bbb aaa" ql)))

let test_perf_smoke_gate () =
  Alcotest.(check int) "perf smoke" 0 (run "perf smoke")

(* ---- throughput: the repeated-BA service --------------------------------- *)

let throughput_cases =
  [
    check_code "single cell exits 0" 0
      "throughput -n 9 --workload steady --depth deep";
    (* workload/depth/scheduler are validated in the command body: misuse
       (1), not a cmdliner parse error (124) *)
    check_code "unknown workload" 1 "throughput --workload nonesuch";
    check_code "unknown depth" 1 "throughput --depth nonesuch";
    check_code "unknown scheduler" 1 "throughput --smoke --scheduler nonesuch";
    check_code "zero shards" 1 "throughput --smoke --shards 0";
    check_code "unknown flag" cli_error "throughput --bogus-flag";
    check_code "non-int n" cli_error "throughput -n many";
  ]

let test_throughput_rejects_malformed_ledger () =
  in_temp_ledger (fun l ->
      Out_channel.with_open_text l (fun oc -> output_string oc "not json");
      Alcotest.(check int) "malformed ledger" 124
        (run
           (Printf.sprintf
              "throughput -n 9 --workload steady --depth seq --ledger %s"
              (Filename.quote l))))

let test_throughput_ledger_roundtrip () =
  in_temp_ledger (fun l ->
      let ql = Filename.quote l in
      let append rev =
        run
          (Printf.sprintf
             "throughput -n 9 --workload steady --depth half --rev %s \
              --date 2026-08-07 --ledger %s"
            rev ql)
      in
      Alcotest.(check int) "first append" 0 (append "aaa");
      Alcotest.(check int) "second append" 0 (append "bbb");
      match Mewc_core.Throughput.load l with
      | Ok [ _; _ ] -> ()
      | Ok es -> Alcotest.failf "loaded %d entries" (List.length es)
      | Error e -> Alcotest.fail e)

let test_throughput_smoke_gate () =
  let code, out = run_out "throughput --smoke" in
  Alcotest.(check int) "smoke exit 0" 0 code;
  List.iter
    (fun needle ->
      Alcotest.(check bool) needle true (contains out needle))
    [ "dec/1k"; "retention"; "smoke ok" ]

(* --progress is strictly an observer: stdout (and so every JSON artifact
   written from it) must be byte-identical with and without the flag. *)
let test_progress_is_invisible () =
  let args = "throughput -n 9 --workload steady --depth seq" in
  let code_off, out_off = run_out args in
  let code_on, out_on = run_out (args ^ " --progress") in
  Alcotest.(check int) "same exit code" code_off code_on;
  Alcotest.(check string) "byte-identical stdout" out_off out_on

(* ---- chaos / fault flags ------------------------------------------------- *)

(* Every cell runs from a seed derived from its identity, so these codes
   are stable, not coin flips. *)
let chaos_cases =
  let planted =
    let p, prof, l = Mewc_core.Degrade.planted_unsafe in
    Printf.sprintf "%s:%s:%d" p prof l
  in
  [
    (* the planted reliability violation: a finding, exit 3 *)
    check_code "planted cell is unsafe" 3
      (Printf.sprintf "chaos --cell %s" planted);
    check_code "crash cell is clean" 0 "chaos --cell weak-ba:crash:2";
    check_code "partition cell stalls" 2 "chaos --cell weak-ba:partition:2";
    check_code "bad cell spec" 1 "chaos --cell weak-ba:bogus:1";
    check_code "run with drop faults" 0 "run -p weak-ba -n 9 --drop 0.1 --fault-seed 7";
    check_code "run under a full partition stalls" 2 "run -p weak-ba -n 9 --partition 0,1";
    check_code "run rejects drop > 1" 1 "run -p weak-ba -n 9 --drop 1.5";
    check_code "baselines reject fault flags" 1 "run -p dolev-strong -n 5 --drop 0.1";
  ]

(* ---- wire / --runtime ---------------------------------------------------- *)

let runtime_cases =
  [
    check_code "run accepts --runtime sync" 0
      "run -p weak-ba -n 5 --runtime sync";
    check_code "run accepts --runtime async" 0
      "run -p weak-ba -n 5 --runtime async";
    (* validated in the command body, like --scheduler: misuse, not 124 *)
    check_code "run rejects unknown runtime" 1
      "run -p weak-ba -n 5 --runtime nonesuch";
    (* the async runtime executes honest runs only: every lock-step-engine
       knob alongside it is a misuse *)
    check_code "async rejects adversaries" 1
      "run -p weak-ba -n 5 --runtime async -a crash -f 1";
    check_code "async rejects fault flags" 1
      "run -p weak-ba -n 5 --runtime async --drop 0.1";
    check_code "async rejects --profile" 1
      "run -p weak-ba -n 5 --runtime async --profile";
    check_code "async rejects --trace" 1
      "run -p weak-ba -n 5 --runtime async --trace";
    check_code "async rejects --shards" 1
      "run -p weak-ba -n 5 --runtime async --shards 2";
    check_code "async rejects baselines" 1
      "run -p dolev-strong -n 5 --runtime async";
  ]

let test_runtime_documented () =
  let code, out = run_out "run --help" in
  Alcotest.(check int) "run --help exits 0" 0 code;
  List.iter
    (fun needle ->
      Alcotest.(check bool) (Printf.sprintf "run --help names %s" needle) true
        (contains out needle))
    [ "--runtime"; "async"; "--delta" ]

let wire_cases =
  [
    (* no mode flag: a usage error from wire itself, not cmdliner *)
    check_code "wire requires a mode" 1 "wire";
    check_code "wire rejects unknown flag" cli_error "wire --bogus-flag";
    check_code "wire rejects --count 0" 1 "wire --fuzz-codec --count 0";
    check_code "wire rejects -n 1" 1 "wire --diff -n 1";
    check_code "wire fuzz exits 0" 0 "wire --fuzz-codec --count 40 --seed 5";
  ]

let test_wire_smoke_gate () =
  let code, out = run_out "wire --smoke" in
  Alcotest.(check int) "smoke exit 0" 0 code;
  List.iter
    (fun needle -> Alcotest.(check bool) needle true (contains out needle))
    [ "every codec law held"; "oracle"; "smoke: ok" ]

let test_chaos_smoke_gate () =
  let code, out = run_out "chaos --smoke" in
  Alcotest.(check int) "smoke exit 0" 0 code;
  List.iter
    (fun needle ->
      let contains s sub =
        let n = String.length s and m = String.length sub in
        let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool) needle true (contains out needle))
    [ "UNSAFE"; "smoke ok" ]

let () =
  Alcotest.run "cli"
    [
      ("help", help_cases);
      ("parse errors", error_cases);
      ( "scheduler flag",
        scheduler_cases
        @ [
            Alcotest.test_case "--help documents the default" `Quick
              test_scheduler_default_documented;
            Alcotest.test_case "legacy and event-driven print identically"
              `Quick test_scheduler_same_decisions;
          ] );
      ( "trace surfaces",
        trace_cases
        @ [
            Alcotest.test_case "--cone --dot emits graphviz" `Quick
              test_trace_cone_dot_is_graphviz;
          ] );
      ( "perf ledger",
        [
          Alcotest.test_case "diff requires selectors" `Quick
            test_perf_diff_requires_selectors;
          Alcotest.test_case "malformed ledger" `Quick
            test_perf_rejects_malformed_ledger;
          Alcotest.test_case "foreign schema" `Quick
            test_perf_rejects_foreign_schema;
          Alcotest.test_case "missing entry" `Quick
            test_perf_missing_entry_is_misuse;
          Alcotest.test_case "append/diff exit codes" `Quick
            test_perf_append_then_diff_codes;
          Alcotest.test_case "smoke gate" `Quick test_perf_smoke_gate;
        ] );
      ( "fuzz modes",
        [
          Alcotest.test_case "requires a mode" `Quick test_fuzz_requires_mode;
          Alcotest.test_case "--list" `Quick test_fuzz_list;
          Alcotest.test_case "clean campaign exits 0" `Quick
            test_fuzz_clean_campaign;
          Alcotest.test_case "unknown target" `Quick test_fuzz_unknown_target;
          Alcotest.test_case "tampered entry" `Quick
            test_fuzz_rejects_tampered_entry;
          Alcotest.test_case "foreign schema" `Quick
            test_fuzz_rejects_foreign_schema;
        ] );
      ( "throughput",
        throughput_cases
        @ [
            Alcotest.test_case "malformed ledger" `Quick
              test_throughput_rejects_malformed_ledger;
            Alcotest.test_case "ledger round-trip" `Quick
              test_throughput_ledger_roundtrip;
            Alcotest.test_case "smoke gate" `Slow test_throughput_smoke_gate;
            Alcotest.test_case "--progress leaves stdout untouched" `Quick
              test_progress_is_invisible;
          ] );
      ( "chaos",
        chaos_cases
        @ [ Alcotest.test_case "smoke gate" `Quick test_chaos_smoke_gate ] );
      ( "wire & --runtime",
        runtime_cases @ wire_cases
        @ [
            Alcotest.test_case "--help documents --runtime" `Quick
              test_runtime_documented;
            Alcotest.test_case "smoke gate" `Slow test_wire_smoke_gate;
          ] );
    ]
