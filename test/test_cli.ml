(* CLI argument parsing for every mewc subcommand, exercised through the
   real binary: --help exits 0, unknown subcommands/flags and missing
   required arguments exit with cmdliner's CLI-error status (124), and the
   fuzz subcommand's mode/exit-code contract holds (clean campaign 0, usage
   misuse 1, tampered corpus entry 1).

   The binary is a declared dune dependency of this test, so it is always
   present at ../bin/mewc.exe relative to the test's working directory. *)

let mewc = Filename.concat (Filename.concat ".." "bin") "mewc.exe"

(* Run [mewc args], muting output; returns the exit code. *)
let run args =
  Sys.command (Printf.sprintf "%s %s >/dev/null 2>&1" (Filename.quote mewc) args)

(* Run [mewc args] and capture stdout. *)
let run_out args =
  let tmp = Filename.temp_file "mewc-cli" ".out" in
  Fun.protect
    ~finally:(fun () -> Sys.remove tmp)
    (fun () ->
      let code =
        Sys.command
          (Printf.sprintf "%s %s >%s 2>/dev/null" (Filename.quote mewc) args
             (Filename.quote tmp))
      in
      (code, In_channel.with_open_text tmp In_channel.input_all))

let check_code name expected args =
  Alcotest.test_case name `Quick (fun () ->
      Alcotest.(check int) (Printf.sprintf "mewc %s" args) expected (run args))

let cli_error = 124

let help_cases =
  [
    check_code "mewc --help" 0 "--help";
    check_code "run --help" 0 "run --help";
    check_code "trace --help" 0 "trace --help";
    check_code "bench --help" 0 "bench --help";
    check_code "fuzz --help" 0 "fuzz --help";
  ]

let error_cases =
  [
    check_code "unknown subcommand" cli_error "frobnicate";
    check_code "unknown flag" cli_error "run --bogus-flag";
    check_code "missing required -p" cli_error "run";
    check_code "bad protocol name" cli_error "run -p not-a-protocol";
    check_code "bad trace format" cli_error "trace -p bb --format yaml";
    check_code "non-int count" cli_error "fuzz --target weak-ba --count many";
    check_code "replay of missing file" cli_error "fuzz --replay /nonexistent.json";
    check_code "replay-dir of missing dir" cli_error "fuzz --replay-dir /nonexistent-dir";
  ]

let test_fuzz_requires_mode () =
  (* no --target and no mode flag: a usage error from fuzz itself, not
     cmdliner — distinct code 1 *)
  Alcotest.(check int) "fuzz alone" 1 (run "fuzz")

let test_fuzz_list () =
  let code, out = run_out "fuzz --list" in
  Alcotest.(check int) "exit 0" 0 code;
  List.iter
    (fun name ->
      Alcotest.(check bool) name true
        (List.mem name
           (List.concat_map
              (fun l -> String.split_on_char ' ' l)
              (String.split_on_char '\n' out))))
    [ "fallback"; "weak-ba"; "weak-ba-ablated"; "bb"; "binary-bb"; "strong-ba" ]

let test_fuzz_clean_campaign () =
  (* tiny sound campaign: exits 0 (no violation) *)
  Alcotest.(check int) "clean exit" 0
    (run "fuzz --target weak-ba --count 8 --seed 3 -j 2")

let test_fuzz_unknown_target () =
  Alcotest.(check int) "unknown target" 1 (run "fuzz --target nonesuch")

let test_fuzz_rejects_tampered_entry () =
  (* a well-formed corpus entry whose recorded violation cannot reproduce *)
  let tmp = Filename.temp_file "mewc-cli" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove tmp)
    (fun () ->
      Out_channel.with_open_text tmp (fun oc ->
          output_string oc
            {|{"schema":"mewc-fuzz/1","target":"weak-ba","n":9,"t":4,
               "scenario":{"seed":"1","shuffle":null,"corruptions":[]},
               "violation":{"monitor":"agreement","slot":3,"reason":"planted"}}|});
      Alcotest.(check int) "tampered entry rejected" 1
        (run (Printf.sprintf "fuzz --replay %s" (Filename.quote tmp))))

let test_fuzz_rejects_foreign_schema () =
  let tmp = Filename.temp_file "mewc-cli" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove tmp)
    (fun () ->
      Out_channel.with_open_text tmp (fun oc ->
          output_string oc {|{"schema":"mewc-trace/1","events":[]}|});
      Alcotest.(check int) "foreign schema rejected" 1
        (run (Printf.sprintf "fuzz --replay %s" (Filename.quote tmp))))

let () =
  Alcotest.run "cli"
    [
      ("help", help_cases);
      ("parse errors", error_cases);
      ( "fuzz modes",
        [
          Alcotest.test_case "requires a mode" `Quick test_fuzz_requires_mode;
          Alcotest.test_case "--list" `Quick test_fuzz_list;
          Alcotest.test_case "clean campaign exits 0" `Quick
            test_fuzz_clean_campaign;
          Alcotest.test_case "unknown target" `Quick test_fuzz_unknown_target;
          Alcotest.test_case "tampered entry" `Quick
            test_fuzz_rejects_tampered_entry;
          Alcotest.test_case "foreign schema" `Quick
            test_fuzz_rejects_foreign_schema;
        ] );
    ]
