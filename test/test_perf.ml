(* The perf layer: the domain pool's scheduling-independence guarantees
   (one-shot and persistent worker sets), the sweep's
   parallel-equals-sequential property, and the intra-run sharding's
   core-row invariance (the invariants the whole multicore runner rests
   on). *)

open Mewc_prelude
open Mewc_core

(* ---- Pool ---------------------------------------------------------------- *)

let pool_map_order () =
  let xs = Array.init 100 Fun.id in
  List.iter
    (fun jobs ->
      Alcotest.(check (array int))
        (Printf.sprintf "jobs=%d preserves order" jobs)
        (Array.map (fun x -> x * x) xs)
        (Pool.map ~jobs (fun x -> x * x) xs))
    [ 1; 2; 3; 7; 100; 200 ]

let pool_empty_and_tiny () =
  Alcotest.(check (array int)) "empty" [||] (Pool.map ~jobs:4 Fun.id [||]);
  Alcotest.(check (array int)) "one task" [| 9 |] (Pool.map ~jobs:4 (fun x -> x * x) [| 3 |]);
  Alcotest.(check (list int))
    "list version" [ 2; 4; 6 ]
    (Pool.map_list ~jobs:2 (fun x -> 2 * x) [ 1; 2; 3 ])

exception Boom of int

let pool_exception_lowest_index () =
  (* Tasks 3 and 7 fail on different workers; the surfaced exception must
     be task 3's, whichever worker finished first. *)
  List.iter
    (fun jobs ->
      match
        Pool.run ~jobs
          (Array.init 10 (fun i () -> if i = 3 || i = 7 then raise (Boom i) else i))
      with
      | _ -> Alcotest.fail "expected an exception"
      | exception Boom i ->
        Alcotest.(check int) (Printf.sprintf "jobs=%d lowest index" jobs) 3 i)
    [ 1; 2; 4 ]

let workers_reuse_deterministic () =
  (* One worker set fed many rounds — the hot path the sharded engine runs
     once per slot — must match the sequential map on every round. *)
  Pool.with_workers ~jobs:3 (fun ws ->
      Alcotest.(check int) "lanes" 3 (Pool.size ws);
      for round = 0 to 9 do
        let expect = Array.init 17 (fun i -> (round * 31) + (i * i)) in
        let got =
          Pool.exec ws (Array.init 17 (fun i () -> (round * 31) + (i * i)))
        in
        Alcotest.(check (array int))
          (Printf.sprintf "round %d" round)
          expect got
      done)

let workers_exception_lowest_index () =
  Pool.with_workers ~jobs:4 (fun ws ->
      (match
         Pool.exec ws
           (Array.init 10 (fun i () -> if i = 2 || i = 9 then raise (Boom i) else i))
       with
      | _ -> Alcotest.fail "expected an exception"
      | exception Boom i -> Alcotest.(check int) "lowest index" 2 i);
      (* the set survives a failing round and keeps working *)
      Alcotest.(check (array int)) "set still live" [| 0; 1; 2 |]
        (Pool.exec ws (Array.init 3 (fun i () -> i))))

let nested_run_falls_back_sequential () =
  (* Pool.run from inside a pool task must not deadlock on the shared
     worker set; it degrades to sequential execution in the worker. *)
  let results =
    Pool.run ~jobs:2
      (Array.init 4 (fun i () ->
           Array.to_list (Pool.run ~jobs:2 (Array.init 3 (fun j () -> (10 * i) + j)))))
  in
  Alcotest.(check (array (list int)))
    "nested results"
    (Array.init 4 (fun i -> List.init 3 (fun j -> (10 * i) + j)))
    results

let pool_results_match_sequential =
  Test_util.qcheck_case ~name:"pool(jobs) == sequential map for any jobs"
    QCheck2.Gen.(pair (int_range 1 16) (list_size (int_range 0 50) small_int))
    (fun (jobs, xs) ->
      let arr = Array.of_list xs in
      Pool.map ~jobs (fun x -> (x * 7) + 1) arr
      = Array.map (fun x -> (x * 7) + 1) arr)

(* ---- Sweep determinism --------------------------------------------------- *)

let sweep_parallel_identical () =
  (* The tentpole property: fanning the smoke grid across domains yields
     byte-identical rows to the sequential pass, for several job counts. *)
  let sequential = List.map Sweep.row_to_line (Sweep.run_all ~jobs:1 Sweep.smoke_grid) in
  List.iter
    (fun jobs ->
      let parallel = List.map Sweep.row_to_line (Sweep.run_all ~jobs Sweep.smoke_grid) in
      Alcotest.(check (list string))
        (Printf.sprintf "jobs=%d byte-identical" jobs)
        sequential parallel)
    [ 2; 3; 5 ]

let sweep_rerun_deterministic () =
  let a = List.map Sweep.row_to_line (Sweep.run_all ~jobs:1 Sweep.smoke_grid) in
  let b = List.map Sweep.row_to_line (Sweep.run_all ~jobs:1 Sweep.smoke_grid) in
  Alcotest.(check (list string)) "reruns replay bit for bit" a b

let sweep_report () =
  let report = Sweep.run_perf ~jobs:2 ~shard_counts:[ 1; 2 ] Sweep.smoke_grid in
  Alcotest.(check bool) "identical" true report.Sweep.identical;
  Alcotest.(check bool) "shards identical" true report.Sweep.shards_identical;
  Alcotest.(check (list int)) "shard passes ran" [ 1; 2 ]
    (List.map fst report.Sweep.shard_wall_s);
  Alcotest.(check bool) "parallelism note set" true
    (report.Sweep.parallelism <> "");
  Alcotest.(check int) "all points ran" (List.length Sweep.smoke_grid)
    (List.length report.Sweep.rows);
  Alcotest.(check bool) "sequential timing sane" true (report.Sweep.sequential_s >= 0.0);
  (* The report round-trips through the JSON layer (schema mewc-perf/2). *)
  let json = Sweep.report_to_json report in
  match Jsonx.parse (Jsonx.to_string json) with
  | Error e -> Alcotest.failf "report JSON does not reparse: %s" e
  | Ok parsed ->
    Alcotest.(check (option string))
      "schema" (Some "mewc-perf/2")
      (Option.bind (Jsonx.member "schema" parsed) Jsonx.get_str);
    Alcotest.(check (option string))
      "parallelism member"
      (Some report.Sweep.parallelism)
      (Option.bind (Jsonx.member "parallelism" parsed) Jsonx.get_str);
    Alcotest.(check bool) "shards member is an array" true
      (match Jsonx.member "shards" parsed with
      | Some (Jsonx.Arr cells) -> List.length cells = 2
      | _ -> false);
    Alcotest.(check (option bool))
      "shard identity member" (Some true)
      (Option.bind
         (Jsonx.member "shards_identical_to_sequential" parsed)
         Jsonx.get_bool);
    let rows =
      Option.bind (Jsonx.member "rows" parsed) Jsonx.get_list
      |> Option.value ~default:[]
    in
    Alcotest.(check int) "rows serialized" (List.length report.Sweep.rows)
      (List.length rows)

let sweep_sharded_core_rows_identical () =
  (* The intra-run axis: sharding a point's engine across domains must
     leave every protocol-observable row field untouched. Compared on
     row_core_line — per-domain memo tables may split cache hits
    differently, nothing else may move. *)
  let points =
    [
      { Sweep.protocol = "weak-ba"; n = 13; f_spec = "t" };
      { Sweep.protocol = "bb"; n = 9; f_spec = "1" };
      { Sweep.protocol = "strong-ba"; n = 9; f_spec = "0" };
    ]
  in
  let baseline = List.map Sweep.row_core_line (Sweep.run_all points) in
  List.iter
    (fun shards ->
      Alcotest.(check (list string))
        (Printf.sprintf "shards=%d" shards)
        baseline
        (List.map Sweep.row_core_line
           (Sweep.run_all
              ~options:{ Instances.default_options with Instances.shards }
              points)))
    [ 2; 4; 8 ]

let sweep_caches_hit () =
  (* The crypto caches must actually fire on a fallback-heavy point —
     otherwise the hot-path optimization silently regressed. *)
  let row = Sweep.run_point { Sweep.protocol = "weak-ba"; n = 13; f_spec = "t" } in
  let c = row.Sweep.crypto in
  Alcotest.(check bool) "verify cache hit" true (c.Mewc_crypto.Pki.verify_hits > 0);
  Alcotest.(check bool) "aggregate cache hit" true (c.Mewc_crypto.Pki.agg_hits > 0)

let () =
  Alcotest.run "perf"
    [
      ( "pool",
        [
          Alcotest.test_case "map preserves order at any jobs" `Quick pool_map_order;
          Alcotest.test_case "empty / tiny inputs" `Quick pool_empty_and_tiny;
          Alcotest.test_case "exception surfaces at lowest task index" `Quick
            pool_exception_lowest_index;
          Alcotest.test_case "worker set: reuse across rounds deterministic" `Quick
            workers_reuse_deterministic;
          Alcotest.test_case "worker set: exception at lowest index, set survives"
            `Quick workers_exception_lowest_index;
          Alcotest.test_case "nested run falls back to sequential" `Quick
            nested_run_falls_back_sequential;
          pool_results_match_sequential;
        ] );
      ( "sweep",
        [
          Alcotest.test_case "parallel byte-identical to sequential" `Quick
            sweep_parallel_identical;
          Alcotest.test_case "reruns deterministic" `Quick sweep_rerun_deterministic;
          Alcotest.test_case "perf report: identity + mewc-perf/2 round-trip" `Quick
            sweep_report;
          Alcotest.test_case "sharded core rows byte-identical" `Quick
            sweep_sharded_core_rows_identical;
          Alcotest.test_case "crypto caches fire on fallback path" `Quick
            sweep_caches_hit;
        ] );
    ]
