(* The perf layer: the domain pool's scheduling-independence guarantees and
   the sweep's parallel-equals-sequential property (the invariant the whole
   multicore runner rests on). *)

open Mewc_prelude
open Mewc_core

(* ---- Pool ---------------------------------------------------------------- *)

let pool_map_order () =
  let xs = Array.init 100 Fun.id in
  List.iter
    (fun jobs ->
      Alcotest.(check (array int))
        (Printf.sprintf "jobs=%d preserves order" jobs)
        (Array.map (fun x -> x * x) xs)
        (Pool.map ~jobs (fun x -> x * x) xs))
    [ 1; 2; 3; 7; 100; 200 ]

let pool_empty_and_tiny () =
  Alcotest.(check (array int)) "empty" [||] (Pool.map ~jobs:4 Fun.id [||]);
  Alcotest.(check (array int)) "one task" [| 9 |] (Pool.map ~jobs:4 (fun x -> x * x) [| 3 |]);
  Alcotest.(check (list int))
    "list version" [ 2; 4; 6 ]
    (Pool.map_list ~jobs:2 (fun x -> 2 * x) [ 1; 2; 3 ])

exception Boom of int

let pool_exception_lowest_index () =
  (* Tasks 3 and 7 fail on different workers; the surfaced exception must
     be task 3's, whichever worker finished first. *)
  List.iter
    (fun jobs ->
      match
        Pool.run ~jobs
          (Array.init 10 (fun i () -> if i = 3 || i = 7 then raise (Boom i) else i))
      with
      | _ -> Alcotest.fail "expected an exception"
      | exception Boom i ->
        Alcotest.(check int) (Printf.sprintf "jobs=%d lowest index" jobs) 3 i)
    [ 1; 2; 4 ]

let pool_results_match_sequential =
  Test_util.qcheck_case ~name:"pool(jobs) == sequential map for any jobs"
    QCheck2.Gen.(pair (int_range 1 16) (list_size (int_range 0 50) small_int))
    (fun (jobs, xs) ->
      let arr = Array.of_list xs in
      Pool.map ~jobs (fun x -> (x * 7) + 1) arr
      = Array.map (fun x -> (x * 7) + 1) arr)

(* ---- Sweep determinism --------------------------------------------------- *)

let sweep_parallel_identical () =
  (* The tentpole property: fanning the smoke grid across domains yields
     byte-identical rows to the sequential pass, for several job counts. *)
  let sequential = List.map Sweep.row_to_line (Sweep.run_all ~jobs:1 Sweep.smoke_grid) in
  List.iter
    (fun jobs ->
      let parallel = List.map Sweep.row_to_line (Sweep.run_all ~jobs Sweep.smoke_grid) in
      Alcotest.(check (list string))
        (Printf.sprintf "jobs=%d byte-identical" jobs)
        sequential parallel)
    [ 2; 3; 5 ]

let sweep_rerun_deterministic () =
  let a = List.map Sweep.row_to_line (Sweep.run_all ~jobs:1 Sweep.smoke_grid) in
  let b = List.map Sweep.row_to_line (Sweep.run_all ~jobs:1 Sweep.smoke_grid) in
  Alcotest.(check (list string)) "reruns replay bit for bit" a b

let sweep_report () =
  let report = Sweep.run_perf ~jobs:2 Sweep.smoke_grid in
  Alcotest.(check bool) "identical" true report.Sweep.identical;
  Alcotest.(check int) "all points ran" (List.length Sweep.smoke_grid)
    (List.length report.Sweep.rows);
  Alcotest.(check bool) "sequential timing sane" true (report.Sweep.sequential_s >= 0.0);
  (* The report round-trips through the JSON layer (schema mewc-perf/1). *)
  let json = Sweep.report_to_json report in
  match Jsonx.parse (Jsonx.to_string json) with
  | Error e -> Alcotest.failf "report JSON does not reparse: %s" e
  | Ok parsed ->
    Alcotest.(check (option string))
      "schema" (Some "mewc-perf/1")
      (Option.bind (Jsonx.member "schema" parsed) Jsonx.get_str);
    let rows =
      Option.bind (Jsonx.member "rows" parsed) Jsonx.get_list
      |> Option.value ~default:[]
    in
    Alcotest.(check int) "rows serialized" (List.length report.Sweep.rows)
      (List.length rows)

let sweep_caches_hit () =
  (* The crypto caches must actually fire on a fallback-heavy point —
     otherwise the hot-path optimization silently regressed. *)
  let row = Sweep.run_point { Sweep.protocol = "weak-ba"; n = 13; f_spec = "t" } in
  let c = row.Sweep.crypto in
  Alcotest.(check bool) "verify cache hit" true (c.Mewc_crypto.Pki.verify_hits > 0);
  Alcotest.(check bool) "aggregate cache hit" true (c.Mewc_crypto.Pki.agg_hits > 0)

let () =
  Alcotest.run "perf"
    [
      ( "pool",
        [
          Alcotest.test_case "map preserves order at any jobs" `Quick pool_map_order;
          Alcotest.test_case "empty / tiny inputs" `Quick pool_empty_and_tiny;
          Alcotest.test_case "exception surfaces at lowest task index" `Quick
            pool_exception_lowest_index;
          pool_results_match_sequential;
        ] );
      ( "sweep",
        [
          Alcotest.test_case "parallel byte-identical to sequential" `Quick
            sweep_parallel_identical;
          Alcotest.test_case "reruns deterministic" `Quick sweep_rerun_deterministic;
          Alcotest.test_case "perf report: identity + mewc-perf/1 round-trip" `Quick
            sweep_report;
          Alcotest.test_case "crypto caches fire on fallback path" `Quick
            sweep_caches_hit;
        ] );
    ]
