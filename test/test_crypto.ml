open Mewc_crypto

let hex = Sha256.to_hex

let check_digest msg expected () =
  Alcotest.(check string) "digest" expected (hex (Sha256.digest msg))

let sha256_vectors =
  [
    ( "empty string",
      "",
      "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855" );
    ( "abc",
      "abc",
      "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad" );
    ( "two blocks",
      "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
      "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1" );
    ( "448 bits (padding edge)",
      String.make 56 'x',
      Sha256.to_hex (Sha256.digest (String.make 56 'x')) );
  ]

(* Padding edges: every length around the 64-byte block boundary must hash
   without error and injectively (distinct inputs, distinct digests). *)
let padding_edges () =
  let digests =
    List.map
      (fun len -> hex (Sha256.digest (String.make len 'a')))
      [ 0; 1; 54; 55; 56; 57; 63; 64; 65; 119; 120; 127; 128; 129 ]
  in
  let distinct = List.sort_uniq String.compare digests in
  Alcotest.(check int) "all distinct" (List.length digests) (List.length distinct)

let million_a () =
  Alcotest.(check string) "million a"
    "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
    (hex (Sha256.digest (String.make 1_000_000 'a')))

let hmac_rfc4231_case2 () =
  (* RFC 4231 test case 2: key "Jefe". *)
  Alcotest.(check string) "hmac"
    "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
    (hex (Sha256.hmac ~key:"Jefe" "what do ya want for nothing?"))

let hmac_long_key () =
  (* Keys longer than one block are themselves hashed (RFC 2104). *)
  let key = String.make 131 '\xaa' in
  Alcotest.(check string) "hmac"
    "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
    (hex
       (Sha256.hmac ~key
          "Test Using Larger Than Block-Size Key - Hash Key First"))

let setup n = Pki.setup ~seed:42L ~n ()

let sign_verify () =
  let pki, secrets = setup 5 in
  let sg = Pki.sign pki secrets.(2) "hello" in
  Alcotest.(check bool) "verifies" true (Pki.verify pki sg ~msg:"hello");
  Alcotest.(check bool) "wrong msg" false (Pki.verify pki sg ~msg:"hellp");
  Alcotest.(check int) "signer" 2 (Pki.Sig.signer sg)

let cross_pki_rejected () =
  let pki_a, secrets_a = Pki.setup ~seed:1L ~n:5 () in
  let pki_b, _ = Pki.setup ~seed:2L ~n:5 () in
  let sg = Pki.sign pki_a secrets_a.(0) "m" in
  Alcotest.(check bool) "own pki" true (Pki.verify pki_a sg ~msg:"m");
  Alcotest.(check bool) "other pki" false (Pki.verify pki_b sg ~msg:"m")

let shares pki secrets msg idxs = List.map (fun i -> Pki.sign pki secrets.(i) msg) idxs

let threshold_combine () =
  let pki, secrets = setup 7 in
  let sh = shares pki secrets "v" [ 0; 1; 2; 3 ] in
  (match Pki.combine pki ~k:4 ~msg:"v" sh with
  | Some ts ->
    Alcotest.(check bool) "verifies" true (Pki.verify_tsig pki ts ~k:4 ~msg:"v");
    Alcotest.(check bool) "wrong msg" false (Pki.verify_tsig pki ts ~k:4 ~msg:"w");
    Alcotest.(check int) "cardinality" 4 (Pki.Tsig.cardinality ts)
  | None -> Alcotest.fail "combine failed with enough shares");
  Alcotest.(check bool) "too few" true
    (Pki.combine pki ~k:4 ~msg:"v" (shares pki secrets "v" [ 0; 1; 2 ]) = None)

let threshold_duplicates_dont_count () =
  let pki, secrets = setup 7 in
  let s0 = Pki.sign pki secrets.(0) "v" in
  let sh = [ s0; s0; s0; Pki.sign pki secrets.(1) "v" ] in
  Alcotest.(check bool) "dups rejected" true (Pki.combine pki ~k:3 ~msg:"v" sh = None)

let threshold_invalid_shares_filtered () =
  let pki, secrets = setup 7 in
  let bad = Pki.sign pki secrets.(2) "other-message" in
  let sh = bad :: shares pki secrets "v" [ 0; 1 ] in
  Alcotest.(check bool) "invalid filtered" true
    (Pki.combine pki ~k:3 ~msg:"v" sh = None)

let threshold_deterministic () =
  let pki, secrets = setup 7 in
  let sh = shares pki secrets "v" [ 4; 1; 3; 0; 2 ] in
  match (Pki.combine pki ~k:3 ~msg:"v" sh, Pki.combine pki ~k:3 ~msg:"v" (List.rev sh)) with
  | Some a, Some b -> Alcotest.(check bool) "equal" true (Pki.Tsig.equal a b)
  | _ -> Alcotest.fail "combine failed"

let certificate_roundtrip () =
  let pki, secrets = setup 7 in
  let share i =
    Certificate.share pki secrets.(i) ~purpose:"test" ~payload:"42"
  in
  let sh = List.map share [ 0; 1; 2; 5 ] in
  match Certificate.make pki ~k:4 ~purpose:"test" ~payload:"42" sh with
  | None -> Alcotest.fail "make failed"
  | Some c ->
    Alcotest.(check bool) "verify" true (Certificate.verify pki c ~k:4);
    Alcotest.(check bool) "verify_as" true
      (Certificate.verify_as pki c ~k:4 ~purpose:"test");
    Alcotest.(check bool) "wrong purpose" false
      (Certificate.verify_as pki c ~k:4 ~purpose:"other");
    Alcotest.(check string) "payload" "42" (Certificate.payload c);
    Alcotest.(check int) "words" 1 (Certificate.words c)

let certificate_purpose_domain_separation () =
  (* A share for one purpose must not contribute to a certificate for
     another purpose even with identical payloads. *)
  let pki, secrets = setup 7 in
  let alien =
    List.map
      (fun i -> Certificate.share pki secrets.(i) ~purpose:"a" ~payload:"x")
      [ 0; 1; 2 ]
  in
  Alcotest.(check bool) "cross-purpose rejected" true
    (Certificate.make pki ~k:3 ~purpose:"b" ~payload:"x" alien = None)

let certificate_higher_k_rejected () =
  let pki, secrets = setup 7 in
  let sh =
    List.map
      (fun i -> Certificate.share pki secrets.(i) ~purpose:"p" ~payload:"y")
      [ 0; 1; 2 ]
  in
  match Certificate.make pki ~k:3 ~purpose:"p" ~payload:"y" sh with
  | None -> Alcotest.fail "make failed"
  | Some c ->
    Alcotest.(check bool) "k=3 ok" true (Certificate.verify pki c ~k:3);
    Alcotest.(check bool) "k=4 rejected" false (Certificate.verify pki c ~k:4)

let counters () =
  let pki, secrets = setup 3 in
  Pki.reset_counters pki;
  let sg = Pki.sign pki secrets.(0) "m" in
  ignore (Pki.verify pki sg ~msg:"m");
  Alcotest.(check int) "signs" 1 (Pki.signatures_created pki);
  Alcotest.(check bool) "verifies counted" true (Pki.verifications_performed pki >= 1)

(* ---- cache equivalence ---------------------------------------------------
   The memo tables must be invisible: a cached verdict always equals the
   from-scratch one, on valid, tampered, and wrong-signer inputs alike. An
   uncached oracle is simulated with a fresh same-seed PKI per query. *)

let cached_verify_equals_uncached () =
  (* Same seed, two PKIs: one answers everything twice (second answer comes
     from the memo table), the other is rebuilt per query so it never hits.
     Verdicts must agree on valid, tampered, and wrong-signer inputs. *)
  let warm_pki, warm_secrets = setup 5 in
  let queries =
    [ ("valid", 2, "hello", "hello"); ("tampered msg", 2, "hello", "hellp") ]
  in
  List.iter
    (fun (name, signer, signed_msg, checked_msg) ->
      let uncached =
        let pki, secrets = setup 5 in
        let sg = Pki.sign pki secrets.(signer) signed_msg in
        Pki.verify pki sg ~msg:checked_msg
      in
      let sg = Pki.sign warm_pki warm_secrets.(signer) signed_msg in
      Alcotest.(check bool) (name ^ " (cold)") uncached
        (Pki.verify warm_pki sg ~msg:checked_msg);
      Alcotest.(check bool) (name ^ " (warm)") uncached
        (Pki.verify warm_pki sg ~msg:checked_msg))
    queries;
  (* Wrong signer: a tag the claimed signer's key never produced (it came
     from a different-seed PKI). Cached and uncached verdicts must agree,
     and stay rejected even after the genuine tag warmed the memo. *)
  let alien_pki, alien_secrets = Pki.setup ~seed:99L ~n:5 () in
  let alien = Pki.sign alien_pki alien_secrets.(2) "hello" in
  let uncached_alien =
    let pki, _ = setup 5 in
    Pki.verify pki alien ~msg:"hello"
  in
  Alcotest.(check bool) "wrong signer (cold)" uncached_alien
    (Pki.verify warm_pki alien ~msg:"hello");
  Alcotest.(check bool) "wrong signer (warm)" uncached_alien
    (Pki.verify warm_pki alien ~msg:"hello");
  Alcotest.(check bool) "wrong signer rejected" false
    (Pki.verify warm_pki alien ~msg:"hello");
  let stats = Pki.cache_stats warm_pki in
  Alcotest.(check bool) "warm queries hit the memo" true (stats.Pki.verify_hits >= 3)

let cached_verify_signer_isolation () =
  (* The memo is keyed by the *claimed* signer: warming it with p3's tag on
     "m" must not make p1's tag on "m" answer from p3's entry or vice versa. *)
  let pki, secrets = setup 5 in
  let sg1 = Pki.sign pki secrets.(1) "m" in
  let sg3 = Pki.sign pki secrets.(3) "m" in
  Alcotest.(check bool) "p3 genuine (warms p3 entry)" true (Pki.verify pki sg3 ~msg:"m");
  Alcotest.(check bool) "p1 genuine, same msg" true (Pki.verify pki sg1 ~msg:"m");
  Alcotest.(check bool) "p1 tampered, warm cache" false (Pki.verify pki sg1 ~msg:"m'");
  Alcotest.(check bool) "p3 again (memo hit)" true (Pki.verify pki sg3 ~msg:"m")

let cached_tsig_equals_uncached () =
  (* combine warms both memo tables; every later verdict must agree with a
     cold same-seed PKI's answer. *)
  let cold ~k ~msg =
    let pki, secrets = setup 7 in
    match Pki.combine pki ~k:4 ~msg:"v" (shares pki secrets "v" [ 0; 1; 2; 3 ]) with
    | None -> Alcotest.fail "cold combine failed"
    | Some ts -> Pki.verify_tsig pki ts ~k ~msg
  in
  let pki, secrets = setup 7 in
  let sh = shares pki secrets "v" [ 0; 1; 2; 3 ] in
  match Pki.combine pki ~k:4 ~msg:"v" sh with
  | None -> Alcotest.fail "combine failed"
  | Some ts ->
    Alcotest.(check bool) "valid" (cold ~k:4 ~msg:"v")
      (Pki.verify_tsig pki ts ~k:4 ~msg:"v");
    Alcotest.(check bool) "valid is true" true (Pki.verify_tsig pki ts ~k:4 ~msg:"v");
    Alcotest.(check bool) "tampered msg" (cold ~k:4 ~msg:"w")
      (Pki.verify_tsig pki ts ~k:4 ~msg:"w");
    Alcotest.(check bool) "tampered is false" false (Pki.verify_tsig pki ts ~k:4 ~msg:"w");
    Alcotest.(check bool) "higher k" (cold ~k:5 ~msg:"v")
      (Pki.verify_tsig pki ts ~k:5 ~msg:"v");
    let stats = Pki.cache_stats pki in
    Alcotest.(check bool) "aggregate cache hit" true (stats.Pki.agg_hits >= 1)

let cache_capacity_epoch_clear () =
  (* A capacity-2 cache thrashes constantly; answers must not change. *)
  let pki, secrets = Pki.setup ~seed:42L ~cache_capacity:2 ~n:5 () in
  let msgs = [ "a"; "b"; "c"; "d"; "a"; "b"; "c"; "d" ] in
  List.iter
    (fun msg ->
      let sg = Pki.sign pki secrets.(0) msg in
      Alcotest.(check bool) ("valid " ^ msg) true (Pki.verify pki sg ~msg);
      Alcotest.(check bool) ("tampered " ^ msg) false (Pki.verify pki sg ~msg:(msg ^ "!")))
    msgs

let reset_clears_cache_stats () =
  let pki, secrets = setup 3 in
  let sg = Pki.sign pki secrets.(0) "m" in
  ignore (Pki.verify pki sg ~msg:"m");
  ignore (Pki.verify pki sg ~msg:"m");
  Alcotest.(check bool) "hits before reset" true
    ((Pki.cache_stats pki).Pki.verify_hits > 0);
  Pki.reset_counters pki;
  let s = Pki.cache_stats pki in
  Alcotest.(check int) "hits cleared" 0 s.Pki.verify_hits;
  Alcotest.(check int) "misses cleared" 0 s.Pki.verify_misses

let hmac_key_equivalence =
  Test_util.qcheck_case ~name:"hmac_with (hmac_key k) = hmac ~key:k"
    QCheck2.Gen.(pair (string_size (int_range 0 200)) string)
    (fun (key, msg) ->
      Sha256.equal
        (Sha256.hmac_with (Sha256.hmac_key key) msg)
        (Sha256.hmac ~key msg))

let qcheck_sign_verify =
  Test_util.qcheck_case ~name:"sign/verify roundtrip on random messages"
    QCheck2.Gen.string (fun msg ->
      let pki, secrets = Pki.setup ~seed:7L ~n:3 () in
      let sg = Pki.sign pki secrets.(1) msg in
      Pki.verify pki sg ~msg)

(* ---- incremental tallies -------------------------------------------------
   Pki.Tally is the event-driven engine's incremental quorum counter: shares
   tick in one delivery at a time instead of being re-verified as a batch.
   The contract is that incrementality is invisible — after any delivery
   prefix the tally agrees with a from-scratch recount, duplicates and junk
   never move the count, and the certificate it emits is the very Tsig
   `combine` would have built from the same shares. *)

let qcheck_tally_prefix_equals_recount =
  Test_util.qcheck_case
    ~name:"tally after any delivery prefix == from-scratch recount"
    QCheck2.Gen.(
      pair (int_range 1 7) (list_size (int_range 0 30) (int_range 0 9)))
    (fun (k, deliveries) ->
      let pki, secrets = Pki.setup ~seed:11L ~n:10 () in
      let tl = Pki.tally pki ~k ~msg:"m" in
      let seen = ref [] in
      List.for_all
        (fun i ->
          let sg =
            (* index 9 stands in for a junk delivery: a genuine signature,
               but over a different message. *)
            if i = 9 then Pki.sign pki secrets.(0) "other"
            else Pki.sign pki secrets.(i) "m"
          in
          (match Pki.Tally.add tl sg with
          | Pki.Tally.Added -> seen := i :: !seen
          | Pki.Tally.Duplicate | Pki.Tally.Invalid -> ());
          let distinct = List.sort_uniq Int.compare !seen in
          Pki.Tally.count tl = List.length distinct
          && Pki.Tally.complete tl = (List.length distinct >= k)
          &&
          match Pki.Tally.certificate tl with
          | None -> List.length distinct < k
          | Some ts -> (
            let sh = List.map (fun j -> Pki.sign pki secrets.(j) "m") distinct in
            match Pki.combine pki ~k ~msg:"m" sh with
            | None -> false
            | Some ts' ->
              Pki.Tsig.equal ts ts' && Pki.verify_tsig pki ts ~k ~msg:"m"))
        deliveries)

let qcheck_tally_duplicates_idempotent =
  Test_util.qcheck_case
    ~name:"duplicate and invalid deliveries never move a tally"
    QCheck2.Gen.(list_size (int_range 1 15) (int_range 0 6))
    (fun signers ->
      let pki, secrets = Pki.setup ~seed:13L ~n:7 () in
      let tl = Pki.tally pki ~k:3 ~msg:"m" in
      List.for_all
        (fun i ->
          let sg = Pki.sign pki secrets.(i) "m" in
          let first = Pki.Tally.add tl sg in
          let count = Pki.Tally.count tl in
          let again = Pki.Tally.add tl sg in
          let bad = Pki.Tally.add tl (Pki.sign pki secrets.(i) "junk") in
          (first = Pki.Tally.Added || first = Pki.Tally.Duplicate)
          && again = Pki.Tally.Duplicate
          && bad = Pki.Tally.Invalid
          && Pki.Tally.count tl = count
          && Pki.Tally.mem tl i)
        signers)

let qcheck_tally_epoch_clear_freshness =
  (* A capacity-2 memo table epoch-clears constantly under stray traffic;
     the tally's verdict stream and final certificate must not notice. *)
  Test_util.qcheck_case
    ~name:"capacity-2 epoch clears don't change tally verdicts"
    QCheck2.Gen.(
      list_size (int_range 0 25)
        (pair (int_range 0 4) (string_size (int_range 0 3))))
    (fun deliveries ->
      let run cache_capacity =
        let pki, secrets = Pki.setup ~seed:17L ?cache_capacity ~n:5 () in
        let tl = Pki.tally pki ~k:2 ~msg:"m" in
        let verdicts =
          List.map
            (fun (i, extra) ->
              (* stray verification traffic evicts memo entries when the
                 capacity is tiny *)
              ignore (Pki.verify pki (Pki.sign pki secrets.(i) extra) ~msg:extra : bool);
              let msg = if String.length extra mod 2 = 0 then "m" else extra in
              Pki.Tally.add tl (Pki.sign pki secrets.(i) msg))
            deliveries
        in
        (verdicts, Pki.Tally.certificate tl)
      in
      let va, ca = run (Some 2) in
      let vb, cb = run None in
      va = vb
      &&
      match (ca, cb) with
      | None, None -> true
      | Some a, Some b -> Pki.Tsig.equal a b
      | _ -> false)

let certificate_tally_matches_make () =
  let pki, secrets = setup 7 in
  let share i = Certificate.share pki secrets.(i) ~purpose:"test" ~payload:"42" in
  let tl = Certificate.Tally.create pki ~k:3 ~purpose:"test" ~payload:"42" in
  List.iter
    (fun i -> ignore (Certificate.Tally.add tl (share i) : Pki.Tally.verdict))
    [ 5; 0; 2 ];
  Alcotest.(check int) "count" 3 (Certificate.Tally.count tl);
  Alcotest.(check bool) "complete" true (Certificate.Tally.complete tl);
  match
    ( Certificate.Tally.certificate tl,
      Certificate.make pki ~k:3 ~purpose:"test" ~payload:"42"
        (List.map share [ 5; 0; 2 ]) )
  with
  | Some a, Some b ->
    Alcotest.(check bool) "verify_as" true
      (Certificate.verify_as pki a ~k:3 ~purpose:"test");
    Alcotest.(check string) "payload" (Certificate.payload b) (Certificate.payload a);
    Alcotest.(check int) "words" (Certificate.words b) (Certificate.words a)
  | _ -> Alcotest.fail "tally or make failed"

let qcheck_threshold_subsets =
  Test_util.qcheck_case ~name:"any k distinct valid shares combine"
    QCheck2.Gen.(list_size (int_range 1 10) int)
    (fun idxs ->
      let pki, secrets = Pki.setup ~seed:9L ~n:10 () in
      let idxs =
        List.sort_uniq Int.compare (List.map (fun i -> abs i mod 10) idxs)
      in
      let sh = List.map (fun i -> Pki.sign pki secrets.(i) "m") idxs in
      let k = List.length idxs in
      if k = 0 then true
      else
        match Pki.combine pki ~k ~msg:"m" sh with
        | Some ts -> Pki.verify_tsig pki ts ~k ~msg:"m"
        | None -> false)

let () =
  Alcotest.run "crypto"
    [
      ( "sha256",
        List.map
          (fun (name, msg, expected) ->
            Alcotest.test_case name `Quick (check_digest msg expected))
          sha256_vectors
        @ [
            Alcotest.test_case "padding edges" `Quick padding_edges;
            Alcotest.test_case "million 'a'" `Slow million_a;
          ] );
      ( "hmac",
        [
          Alcotest.test_case "rfc4231 case 2" `Quick hmac_rfc4231_case2;
          Alcotest.test_case "long key" `Quick hmac_long_key;
          hmac_key_equivalence;
        ] );
      ( "cache",
        [
          Alcotest.test_case "cached verify == uncached" `Quick
            cached_verify_equals_uncached;
          Alcotest.test_case "memo keyed by claimed signer" `Quick
            cached_verify_signer_isolation;
          Alcotest.test_case "cached tsig == uncached" `Quick
            cached_tsig_equals_uncached;
          Alcotest.test_case "capacity-2 epoch clears don't change verdicts" `Quick
            cache_capacity_epoch_clear;
          Alcotest.test_case "reset clears cache stats" `Quick
            reset_clears_cache_stats;
        ] );
      ( "signatures",
        [
          Alcotest.test_case "sign/verify" `Quick sign_verify;
          Alcotest.test_case "cross-pki rejected" `Quick cross_pki_rejected;
          Alcotest.test_case "counters" `Quick counters;
          qcheck_sign_verify;
        ] );
      ( "threshold",
        [
          Alcotest.test_case "combine & verify" `Quick threshold_combine;
          Alcotest.test_case "duplicates don't count" `Quick
            threshold_duplicates_dont_count;
          Alcotest.test_case "invalid shares filtered" `Quick
            threshold_invalid_shares_filtered;
          Alcotest.test_case "deterministic" `Quick threshold_deterministic;
          qcheck_threshold_subsets;
        ] );
      ( "tallies",
        [
          qcheck_tally_prefix_equals_recount;
          qcheck_tally_duplicates_idempotent;
          qcheck_tally_epoch_clear_freshness;
          Alcotest.test_case "certificate tally == make" `Quick
            certificate_tally_matches_make;
        ] );
      ( "certificates",
        [
          Alcotest.test_case "roundtrip" `Quick certificate_roundtrip;
          Alcotest.test_case "purpose domain separation" `Quick
            certificate_purpose_domain_separation;
          Alcotest.test_case "higher k rejected" `Quick certificate_higher_k_rejected;
        ] );
    ]
