(* A_fallback (echo phase king): agreement, termination, strong unanimity,
   resilience to crashes, equivocating kings, and skewed starts. *)

open Mewc_sim
open Mewc_core

let cfg = Test_util.cfg

let run ?round_len ?start_slot ?(adversary = Adversary.const (Adversary.honest ~name:"h"))
    ~n inputs =
  Instances.run_fallback ~cfg:(cfg n) ?round_len ?start_slot
    ~inputs:(Array.of_list inputs) ~adversary ()

let agree ?expect (o : _ Instances.agreement_outcome) =
  let got =
    Test_util.check_agreement ~pp:Test_util.pp_str ~equal:String.equal
      ~corrupted:o.corrupted o.decisions
  in
  match expect with
  | Some v -> Alcotest.(check string) "decision" v got
  | None -> ()

let unanimity_failure_free () =
  agree ~expect:"v" (run ~n:7 (List.init 7 (fun _ -> "v")))

let unanimity_under_crashes () =
  (* Kings of the first phases crash; the first correct king must still
     drive the unanimous value. *)
  let o =
    run ~n:7
      ~adversary:(Adversary.const (Adversary.crash ~victims:[ 1; 2; 3 ] ()))
      (List.init 7 (fun _ -> "v"))
  in
  agree ~expect:"v" o

let divergent_agreement () =
  agree (run ~n:9 (List.init 9 (fun i -> Printf.sprintf "x%d" i)))

let divergent_with_crashes () =
  let o =
    run ~n:9
      ~adversary:(Adversary.const (Adversary.crash ~victims:[ 1; 2; 3; 4 ] ()))
      (List.init 9 (fun i -> Printf.sprintf "x%d" (i mod 2)))
  in
  agree o

let majority_certified_input_wins () =
  (* t+1 processes propose "m": "m" is popular everywhere, so no other value
     can be certified, and the decision must be "m". *)
  let n = 7 in
  let inputs = List.init n (fun i -> if i < 4 then "m" else Printf.sprintf "y%d" i) in
  agree ~expect:"m" (run ~n inputs)

let adaptive_mid_run_crashes () =
  let o =
    run ~n:9
      ~adversary:(Adversary.const (Adversary.staggered_crash ~victims:[ 1; 2; 3; 4 ] ~every:4))
      (List.init 9 (fun _ -> "v"))
  in
  agree ~expect:"v" o

let equivocating_king_survived () =
  (* King of phase 1 equivocates; the echo round must prevent any
     certification in phase 1 and a later king decides. All inputs distinct
     so unjustified proposals are acceptable (worst case for the attack). *)
  let n = 7 in
  let o =
    run ~n
      ~adversary:(Attacks.epk_equivocating_king ~cfg:(cfg n) ~king:1 ~v1:"a" ~v2:"b")
      (List.init n (fun i -> Printf.sprintf "x%d" i))
  in
  let got =
    Test_util.check_agreement ~pp:Test_util.pp_str ~equal:String.equal
      ~corrupted:o.corrupted o.decisions
  in
  (* Phase 1 must not have decided either of the king's split values
     because no correct process may vote when it sees two proposals. It can
     still decide "a" or "b" later via an honest king whose input they are
     not — here inputs are x0..x6, so neither. *)
  Alcotest.(check bool) "not a Byzantine value" false (got = "a" || got = "b")

let unanimity_beats_byzantine_king () =
  (* All correct processes propose "v"; the Byzantine king pushes "w".
     Strong unanimity must hold: input certificates for "v" make "w"
     unvotable. *)
  let n = 7 in
  let o =
    run ~n
      ~adversary:(Attacks.epk_equivocating_king ~cfg:(cfg n) ~king:1 ~v1:"w" ~v2:"w")
      (List.init n (fun _ -> "v"))
  in
  agree ~expect:"v" o

let skewed_starts () =
  (* round_len = 2 tolerates a one-slot start skew (paper Lemma 18). *)
  let n = 7 in
  let o =
    run ~n ~round_len:2
      ~start_slot:(fun pid -> if pid mod 2 = 0 then 0 else 1)
      (List.init n (fun i -> Printf.sprintf "x%d" (i mod 2)))
  in
  agree o

let skewed_starts_with_crashes () =
  let n = 9 in
  let o =
    run ~n ~round_len:2
      ~start_slot:(fun pid -> pid mod 2)
      ~adversary:(Adversary.const (Adversary.crash ~victims:[ 1; 2 ] ()))
      (List.init n (fun _ -> "v"))
  in
  agree ~expect:"v" o

let quiescence_after_decision () =
  (* Once everyone decides, later phases are silent: a run that decides in
     phase 1 must cost strictly less than the same run forced to phase 3 by
     crashing the first two kings, and neither grows with the number of
     remaining phases. *)
  let n = 9 in
  (* Both runs crash two processes, so the correct sets have equal size;
     only the crashed pids differ: non-kings (decision in phase 1) vs the
     first two kings (decision in phase 3). *)
  let fast =
    run ~n
      ~adversary:(Adversary.const (Adversary.crash ~victims:[ 7; 8 ] ()))
      (List.init n (fun _ -> "v"))
  in
  let slow =
    run ~n
      ~adversary:(Adversary.const (Adversary.crash ~victims:[ 1; 2 ] ()))
      (List.init n (fun _ -> "v"))
  in
  Alcotest.(check bool)
    (Printf.sprintf "phase-1 run (%d) cheaper than phase-3 run (%d)" fast.words
       slow.words)
    true
    (fast.words < slow.words);
  (* And even the slow run stays far below (t+1) fully-active phases. *)
  Alcotest.(check bool)
    (Printf.sprintf "slow run %d below 4 phases worth" slow.words)
    true
    (slow.words < 4 * (3 * n * n))

let words_scale_quadratically () =
  let words_for n = (run ~n (List.init n (fun _ -> "v"))).Instances.words in
  let pts =
    List.map (fun n -> (float_of_int n, float_of_int (words_for n))) [ 9; 17; 33; 65 ]
  in
  let fit = Mewc_prelude.Stats.loglog_fit pts in
  Alcotest.(check bool)
    (Printf.sprintf "exponent %.2f in [1.6, 2.4]" fit.Mewc_prelude.Stats.slope)
    true
    (fit.Mewc_prelude.Stats.slope > 1.6 && fit.Mewc_prelude.Stats.slope < 2.4)

let lock_carryover () =
  (* The cross-phase safety mechanism in isolation: phase 1's Byzantine king
     certifies its value but shows the certificate to a single correct
     process; that process's lock must steer phase 2 (correct king) to the
     same value. *)
  let n = 7 in
  let o =
    run ~n
      ~adversary:(Attacks.epk_lock_carryover_king ~cfg:(cfg n) ~target:0)
      (List.init n (fun i -> Printf.sprintf "x%d" i))
  in
  agree ~expect:"king-value" o

let trace_shows_quiescence () =
  (* Hard quiescence check via the trace: after the slot at which the last
     correct process decided (plus one slot for the one-shot Decided
     announcements), correct processes send nothing at all. *)
  let module E = Instances.Epk_str in
  let n = 9 in
  let c = cfg n in
  let pki, secrets = Mewc_crypto.Pki.setup ~seed:5L ~n () in
  let protocol pid =
    {
      Process.init =
        E.init ~cfg:c ~pki ~secret:secrets.(pid) ~pid ~input:"v" ~start_slot:0
          ~round_len:1;
      step = (fun ~slot ~inbox st -> E.step ~slot ~inbox st);
      wake = None;
    }
  in
  let res =
    Engine.run ~cfg:c
      ~options:{ Engine.default_options with record_trace = true }
      ~words:E.words ~horizon:(E.horizon c ~round_len:1) ~protocol
      ~adversary:(Adversary.honest ~name:"h") ()
  in
  let last_decision =
    Array.to_list res.Engine.states
    |> List.filter_map E.decided_at
    |> List.fold_left max 0
  in
  let late_correct_sends =
    Trace.sends res.Engine.trace
    |> List.filter (fun s ->
           (not s.Trace.byzantine_sender)
           && s.Trace.envelope.Envelope.sent_at > last_decision + 1)
  in
  Alcotest.(check int)
    (Printf.sprintf "no correct traffic after slot %d" (last_decision + 1))
    0
    (List.length late_correct_sends);
  Alcotest.(check bool) "everyone decided" true
    (Array.for_all (fun st -> E.decision st <> None) res.Engine.states)

let qcheck_agreement_random_crashes =
  Test_util.qcheck_case ~count:40 ~name:"agreement under random inputs+crashes"
    QCheck2.Gen.(
      triple (int_range 0 1000) (oneofl [ 5; 7; 9 ]) (list_size (int_range 0 4) (int_range 0 8)))
    (fun (seed, n, victims) ->
      let c = cfg n in
      let t = c.Config.t in
      let victims =
        List.sort_uniq Int.compare (List.filter (fun v -> v < n) victims)
        |> List.filteri (fun i _ -> i < t)
      in
      let rng = Mewc_prelude.Rng.create (Int64.of_int (seed + 1)) in
      let inputs =
        List.init n (fun _ -> Printf.sprintf "v%d" (Mewc_prelude.Rng.int rng 3))
      in
      let o =
        run ~n ~adversary:(Adversary.const (Adversary.crash ~victims ())) inputs
      in
      let decided =
        Array.to_list o.Instances.decisions
        |> List.mapi (fun p d -> (p, d))
        |> List.filter (fun (p, _) -> not (List.mem p o.Instances.corrupted))
        |> List.map snd
      in
      List.for_all (fun d -> d <> None) decided
      && List.sort_uniq compare decided |> List.length = 1)

let () =
  Alcotest.run "fallback (echo phase king)"
    [
      ( "strong unanimity",
        [
          Alcotest.test_case "failure free" `Quick unanimity_failure_free;
          Alcotest.test_case "under crashes" `Quick unanimity_under_crashes;
          Alcotest.test_case "beats byzantine king" `Quick unanimity_beats_byzantine_king;
          Alcotest.test_case "majority-certified input wins" `Quick
            majority_certified_input_wins;
        ] );
      ( "agreement & termination",
        [
          Alcotest.test_case "divergent inputs" `Quick divergent_agreement;
          Alcotest.test_case "divergent + crashes" `Quick divergent_with_crashes;
          Alcotest.test_case "adaptive mid-run crashes" `Quick adaptive_mid_run_crashes;
          Alcotest.test_case "equivocating king" `Quick equivocating_king_survived;
          Alcotest.test_case "lock carry-over across phases" `Quick lock_carryover;
          qcheck_agreement_random_crashes;
        ] );
      ( "timing",
        [
          Alcotest.test_case "skewed starts (2δ rounds)" `Quick skewed_starts;
          Alcotest.test_case "skewed starts + crashes" `Quick skewed_starts_with_crashes;
        ] );
      ( "complexity",
        [
          Alcotest.test_case "quiescence after decision" `Quick quiescence_after_decision;
          Alcotest.test_case "trace-level quiescence" `Quick trace_shows_quiescence;
          Alcotest.test_case "quadratic scaling" `Slow words_scale_quadratically;
        ] );
    ]
