(* mewc — run one protocol execution from the command line.

   Examples:
     mewc run -p bb -n 9 --adversary crash -f 2
     mewc run -p weak-ba -n 21 --adversary busy-leaders -f 4 --seed 7 --trace
     mewc run -p strong-ba -n 9 --adversary withholding-leader --profile
     mewc run -p fallback -n 9 --adversary equivocating-king
     mewc run -p dolev-strong -n 9
     mewc trace -p weak-ba -n 9 --adversary crash -f 2 --format csv -o run.csv
     mewc trace -p weak-ba -n 9 --adversary crash -f 2 --cone 5 --dot
     mewc run -p bb -n 9 --drop 0.3 --fault-seed 7
     mewc chaos --smoke
     mewc chaos --cell weak-ba:partition:3
     mewc perf diff -- -2 -1
     mewc throughput --smoke
     mewc throughput --workload bursty --depth deep --ledger BENCH_throughput.json
   `run` prints per-process decisions and the run's communication metering
   (with --trace, also the per-slot word series); `trace` emits the full
   structured execution trace as JSON (schema mewc-trace/4) or CSV, or a
   decision's happens-before cone; `chaos` sweeps the (protocol x
   fault-intensity) degradation matrix (schema mewc-degrade/1); `perf`
   manages the append-only regression ledger (schema mewc-ledger/1);
   `throughput` runs the repeated-BA service over the workload ×
   pipeline-depth grid and the SLO retention sweep (schema
   mewc-throughput/1).

   Exit codes, uniform across subcommands:
     0    success
     1    misuse or operational failure (unsupported combination, missing
          file, non-reproducing corpus entry, ...)
     2    a stall: the run (or the requested chaos cell) kept safety but
          left correct non-faulted processes undecided
     3    a finding: a fuzz violation, a perf regression beyond threshold,
          an Unsafe chaos cell
     124  parse errors — ours (malformed JSON, wrong schema) and cmdliner's
          (bad command line), deliberately the same code *)

open Mewc_sim
open Mewc_core
module Jsonx = Mewc_prelude.Jsonx

let pr fmt = Printf.printf fmt

let die_misuse fmt =
  Printf.ksprintf
    (fun s ->
      Printf.eprintf "mewc: %s\n" s;
      exit 1)
    fmt

let die_parse fmt =
  Printf.ksprintf
    (fun s ->
      Printf.eprintf "mewc: %s\n" s;
      exit 124)
    fmt

(* --scheduler is a plain string flag validated here rather than an
   Arg.enum: an unknown value is a misuse (exit 1), like `fuzz --target
   nonesuch`, whereas cmdliner's own enum failure would exit 124. *)
let scheduler_of_flag s =
  match Engine.scheduler_of_string s with
  | Ok sch -> sch
  | Error e -> die_misuse "%s" e

type protocol = Bb | Weak_ba | Strong_ba | Fallback | Dolev_strong | Naive_bb

let protocol_conv =
  Cmdliner.Arg.enum
    [
      ("bb", Bb);
      ("weak-ba", Weak_ba);
      ("strong-ba", Strong_ba);
      ("fallback", Fallback);
      ("dolev-strong", Dolev_strong);
      ("naive-bb", Naive_bb);
    ]

let protocol_name = function
  | Bb -> "bb"
  | Weak_ba -> "weak-ba"
  | Strong_ba -> "strong-ba"
  | Fallback -> "fallback"
  | Dolev_strong -> "dolev-strong"
  | Naive_bb -> "naive-bb"

let adversaries =
  [
    "honest";
    "crash";
    "staggered";
    "busy-leaders";
    "lonely-decider";
    "help-spam";
    "equivocating-sender";
    "equivocating-king";
    "withholding-leader";
  ]

let victims f = List.init f (fun i -> i + 1)

(* ---- adversary resolution, shared by `run` and `trace` ------------------- *)

let honest ~pki ~secrets =
  Adversary.const (Adversary.honest ~name:"honest") ~pki ~secrets

let crash ~f ~pki ~secrets =
  Adversary.const (Adversary.crash ~victims:(victims f) ()) ~pki ~secrets

let staggered ~f ~pki ~secrets =
  Adversary.const
    (Adversary.staggered_crash ~victims:(victims f) ~every:3)
    ~pki ~secrets

let generic ~f name =
  match name with
  | "honest" -> Ok honest
  | "crash" -> Ok (crash ~f)
  | "staggered" -> Ok (staggered ~f)
  | other -> Error other

let unsupported p a = die_misuse "adversary %S is not applicable to protocol %s" a p

let bb_adversary ~cfg ~f ~input adversary =
  match generic ~f adversary with
  | Ok a -> a
  | Error "equivocating-sender" ->
    Attacks.bb_equivocating_sender ~cfg ~sender:0 ~v1:input ~v2:(input ^ "'")
  | Error a -> unsupported "bb" a

let wba_adversary ~cfg ~n ~t ~f adversary =
  match generic ~f adversary with
  | Ok a -> a
  | Error "busy-leaders" -> Attacks.wba_busy_byz_leaders ~cfg ~leaders:(victims f)
  | Error "lonely-decider" -> Attacks.wba_lonely_decider ~cfg ~lucky:(t + 1)
  | Error "help-spam" ->
    Attacks.wba_help_req_spammers ~cfg ~spammers:(List.init f (fun i -> n - 1 - i))
  | Error a -> unsupported "weak-ba" a

let sba_adversary ~cfg ~n ~f adversary =
  match generic ~f adversary with
  | Ok a -> a
  | Error "withholding-leader" ->
    Attacks.sba_withholding_leader ~cfg ~leader:0 ~lucky:(min 3 (n - 1))
  | Error a -> unsupported "strong-ba" a

let epk_adversary ~cfg ~f ~input adversary =
  match generic ~f adversary with
  | Ok a -> a
  | Error "equivocating-king" ->
    Attacks.epk_equivocating_king ~cfg ~king:1 ~v1:(input ^ "1") ~v2:(input ^ "2")
  | Error a -> unsupported "fallback" a

(* ---- fault flags, shared plan construction ------------------------------- *)

let plan_of_flags ~n ~seed ~drop ~dup ~delay ~delay_prob ~crash ~partition
    ~fault_seed =
  let plan =
    {
      Faults.seed =
        (match fault_seed with Some s -> Int64.of_int s | None -> seed);
      drop;
      dup;
      delay;
      delay_prob = (if delay > 0 then delay_prob else 0.0);
      processes = List.map (fun p -> (p, Faults.Crash { at = 0 })) crash;
      partitions =
        (if partition = [] then []
         else
           [ { Faults.from_slot = 0; until_slot = 1_000_000; island = partition } ]);
    }
  in
  match Faults.validate ~n plan with
  | Ok () -> plan
  | Error e -> die_misuse "bad fault plan: %s" e

(* ---- `run` ---------------------------------------------------------------- *)

let print_per_slot (s : Meter.snapshot) =
  pr "\nper-slot words (silent slots omitted; %d slots total):\n"
    (List.length s.Meter.per_slot);
  pr "  %6s %8s %10s %10s\n" "slot" "words" "messages" "byz_words";
  List.iter
    (fun (r : Meter.row) ->
      if r.Meter.messages > 0 || r.Meter.byz_messages > 0 then
        pr "  %6d %8d %10d %10d\n" r.Meter.ix r.Meter.words r.Meter.messages
          r.Meter.byz_words)
    s.Meter.per_slot

let print_outcome ~show ~trace pr_decisions (o : _ Instances.agreement_outcome) =
  pr_decisions ();
  pr "\nrun summary:\n";
  pr "  f (actual corruptions)     %d%s\n" o.Instances.f
    (if o.Instances.corrupted = [] then ""
     else
       Printf.sprintf "  (%s)"
         (String.concat ", " (List.map (Printf.sprintf "p%d") o.Instances.corrupted)));
  pr "  words (correct senders)    %d\n" o.Instances.words;
  pr "  messages                   %d\n" o.Instances.messages;
  pr "  words (byzantine senders)  %d\n" o.Instances.byz_words;
  pr "  signatures created         %d\n" o.Instances.signatures;
  let c = o.Instances.crypto in
  pr "  crypto cache (hit/miss)    verify %d/%d, aggregate %d/%d\n"
    c.Mewc_crypto.Pki.verify_hits c.Mewc_crypto.Pki.verify_misses
    c.Mewc_crypto.Pki.agg_hits c.Mewc_crypto.Pki.agg_misses;
  pr "  slots simulated            %d\n" o.Instances.slots;
  (match o.Instances.faulty with
  | [] -> ()
  | ps ->
    pr "  injected process faults    %s\n"
      (String.concat ", " (List.map (Printf.sprintf "p%d") ps)));
  pr "  status                     %s\n"
    (Format.asprintf "%a" Instances.pp_status o.Instances.status);
  if show then begin
    pr "  non-silent phases          %d\n" o.Instances.nonsilent_phases;
    pr "  help requests              %d\n" o.Instances.help_requests;
    pr "  fallback runs              %d\n" o.Instances.fallback_runs
  end;
  if trace then print_per_slot o.Instances.meter;
  o.Instances.status

let decision_line p d = pr "  p%-3d decided %s\n" p d

(* ---- `run --runtime async` ------------------------------------------------ *)

module Wire = Mewc_wire

(* The async-domains runtime executes honest runs only (see
   Mewc_wire.Runtime's model note): the rushing adversary, the slot-level
   fault stage, the profiler and the engine scheduler/shard knobs are all
   lock-step constructs, so selecting any of them alongside --runtime async
   is a misuse. Byte-level chaos lives under `mewc wire --chaos`. *)
let run_async_cmd protocol n adversary f input ~seed ~delta ~faults ~profile_on
    ~trace ~scheduler ~shards =
  if adversary <> "honest" then
    die_misuse
      "--adversary %s requires --runtime sync: the async runtime executes \
       honest runs only (its adversarial surface is the network; see `mewc \
       wire --chaos`)"
      adversary;
  if f > 0 then
    die_misuse "--runtime async executes honest runs only; -f must be 0";
  if not (Faults.is_none faults) then
    die_misuse
      "slot-level fault injection requires --runtime sync; the async \
       runtime's faults are byte-level (`mewc wire --chaos`)";
  if profile_on then die_misuse "--profile requires --runtime sync";
  if trace then die_misuse "--trace requires --runtime sync";
  if scheduler <> `Legacy then
    die_misuse
      "--scheduler picks a lock-step engine; it has no effect under \
       --runtime async";
  if shards > 1 then
    die_misuse
      "--shards shards the lock-step step phase; the async runtime is \
       already one domain per process";
  (match protocol with
  | Dolev_strong | Naive_bb ->
    die_misuse "--runtime async covers the paper's protocols, not baselines"
  | Bb | Weak_ba | Strong_ba | Fallback -> ());
  let cfg = Config.optimal ~n in
  pr "mewc: n=%d t=%d protocol=%s runtime=async-domains delta=%gs seed=%Ld\n\n"
    n cfg.Config.t (protocol_name protocol) delta seed;
  let finish : type d. d Wire.Runtime.outcome -> unit =
   fun o ->
    Array.iteri
      (fun p d ->
        decision_line p (match d with Some s -> s | None -> "nothing"))
      o.Wire.Runtime.decided_strs;
    let sum = Array.fold_left ( + ) 0 in
    let s = o.Wire.Runtime.stats in
    pr "\nrun summary (async-domains):\n";
    pr "  words (metered)            %d\n" (sum o.Wire.Runtime.words);
    pr "  messages                   %d\n" (sum o.Wire.Runtime.messages);
    pr "  frames / bytes on wire     %d / %d\n" s.Wire.Runtime.frames_sent
      s.Wire.Runtime.bytes_sent;
    pr "  encoded words (32 B units) %d\n" s.Wire.Runtime.encoded_words;
    pr "  send retries / timeouts    %d / %d\n" s.Wire.Runtime.retries
      s.Wire.Runtime.send_timeouts;
    pr "  decode rejects / late      %d / %d\n" s.Wire.Runtime.decode_rejects
      s.Wire.Runtime.late_frames;
    pr "  barrier timer expiries     %d\n" s.Wire.Runtime.deadline_expiries;
    pr "  slots simulated            %d\n" o.Wire.Runtime.slots;
    (match o.Wire.Runtime.failures with
    | [] -> ()
    | (p, e) :: _ -> die_misuse "domain p%d died: %s" p e);
    if
      o.Wire.Runtime.stalled <> []
      || Array.exists Option.is_none o.Wire.Runtime.decided_strs
    then begin
      pr "\nstall: undecided processes%s\n"
        (match o.Wire.Runtime.stalled with
        | [] -> ""
        | ps ->
          Printf.sprintf " (deadman-stopped: %s)"
            (String.concat ", " (List.map (Printf.sprintf "p%d") ps)));
      exit 2
    end
  in
  match protocol with
  | Bb ->
    finish
      (Wire.Runtime.run
         (module Instances.Bb_protocol)
         ~codec:Wire.Zoo.adaptive_bb_msg ~cfg ~seed ~delta
         ~params:{ Instances.Bb_protocol.sender = 0; input }
         ())
  | Weak_ba ->
    finish
      (Wire.Runtime.run
         (module Instances.Weak_ba_protocol)
         ~codec:Wire.Zoo.weak_str_msg ~cfg ~seed ~delta
         ~params:
           {
             Instances.Weak_ba_protocol.inputs = Array.make n input;
             validate = (fun _ -> true);
             quorum_override = None;
           }
         ())
  | Strong_ba ->
    finish
      (Wire.Runtime.run
         (module Instances.Strong_ba_protocol)
         ~codec:Wire.Zoo.strong_bool_msg ~cfg ~seed ~delta
         ~params:
           {
             Instances.Strong_ba_protocol.leader = 0;
             inputs = Array.init n (fun i -> i mod 2 = 0);
           }
         ())
  | Fallback ->
    finish
      (Wire.Runtime.run
         (module Instances.Fallback_protocol)
         ~codec:Wire.Zoo.epk_str_msg ~cfg ~seed ~delta
         ~params:
           {
             Instances.Fallback_protocol.inputs =
               Array.init n (fun i -> Printf.sprintf "%s%d" input (i mod 3));
             round_len = 1;
             start_slot = (fun _ -> 0);
           }
         ())
  | Dolev_strong | Naive_bb -> assert false (* rejected above *)

let run_cmd protocol n adversary f seed input trace profile_on drop dup delay
    delay_prob crash partition fault_seed scheduler shards runtime delta =
  let runtime =
    match Wire.Runtime.kind_of_string runtime with
    | Ok k -> k
    | Error e -> die_misuse "%s" e
  in
  let scheduler = scheduler_of_flag scheduler in
  if shards < 1 then die_misuse "--shards %d: need at least one shard" shards;
  if profile_on && shards > 1 then
    die_misuse "--profile requires --shards 1 (the profiler is not domain-safe)";
  let cfg = Config.optimal ~n in
  let t = cfg.Config.t in
  let f = min f t in
  let seed = Int64.of_int seed in
  let faults =
    plan_of_flags ~n ~seed ~drop ~dup ~delay ~delay_prob ~crash ~partition
      ~fault_seed
  in
  match runtime with
  | Wire.Runtime.Async_domains ->
    run_async_cmd protocol n adversary f input ~seed ~delta ~faults ~profile_on
      ~trace ~scheduler ~shards
  | Wire.Runtime.Sync_oracle ->
  let profile = if profile_on then Some (Profile.create ()) else None in
  let options =
    {
      Instances.default_options with
      Instances.seed;
      profile;
      faults;
      scheduler;
      shards;
    }
  in
  pr "mewc: n=%d t=%d protocol=%s adversary=%s f=%d seed=%Ld%s\n\n" n t
    (protocol_name protocol) adversary f seed
    (if Faults.is_none faults then ""
     else Printf.sprintf " faults=%s" (Format.asprintf "%a" Faults.pp faults));
  let status =
    let go () =
      match protocol with
      | Bb ->
      let adv = bb_adversary ~cfg ~f ~input adversary in
      let o = Instances.run_bb ~cfg ~options ~input ~adversary:adv () in
      print_outcome ~show:true ~trace
      (fun () ->
        Array.iteri
          (fun p d ->
            if not (List.mem p o.Instances.corrupted) then
              decision_line p
                (match d with
                | Some (Adaptive_bb.Decided v) -> Printf.sprintf "%S" v
                | Some Adaptive_bb.No_decision -> "⊥"
                | None -> "nothing (bug)"))
          o.Instances.decisions)
      o
  | Weak_ba ->
    let adv = wba_adversary ~cfg ~n ~t ~f adversary in
    let o =
      Instances.run_weak_ba ~cfg ~options ~inputs:(Array.make n input)
        ~adversary:adv ()
    in
    print_outcome ~show:true ~trace
      (fun () ->
        Array.iteri
          (fun p d ->
            if not (List.mem p o.Instances.corrupted) then
              decision_line p
                (match d with
                | Some (Instances.Weak_str.Value v) -> Printf.sprintf "%S" v
                | Some Instances.Weak_str.Bot -> "⊥"
                | None -> "nothing (bug)"))
          o.Instances.decisions)
      o
  | Strong_ba ->
    let adv = sba_adversary ~cfg ~n ~f adversary in
    let o =
      Instances.run_strong_ba ~cfg ~options
        ~inputs:(Array.init n (fun i -> i mod 2 = 0))
        ~adversary:adv ()
    in
    print_outcome ~show:true ~trace
      (fun () ->
        Array.iteri
          (fun p d ->
            if not (List.mem p o.Instances.corrupted) then
              decision_line p
                (match d with
                | Some b -> string_of_bool b
                | None -> "nothing (bug)"))
          o.Instances.decisions)
      o
  | Fallback ->
    let adv = epk_adversary ~cfg ~f ~input adversary in
    let o =
      Instances.run_fallback ~cfg ~options
        ~inputs:(Array.init n (fun i -> Printf.sprintf "%s%d" input (i mod 3)))
        ~adversary:adv ()
    in
    print_outcome ~show:false ~trace
      (fun () ->
        Array.iteri
          (fun p d ->
            if not (List.mem p o.Instances.corrupted) then
              decision_line p
                (match d with Some v -> Printf.sprintf "%S" v | None -> "nothing (bug)"))
          o.Instances.decisions)
      o
  | Dolev_strong ->
    if profile_on then
      die_misuse "--profile is only available for the paper's protocols";
    if scheduler <> `Legacy then
      die_misuse
        "--scheduler event-driven is only available for the paper's protocols";
    if shards > 1 then
      die_misuse "--shards is only available for the paper's protocols";
    if not (Faults.is_none faults) then
      die_misuse "fault injection is only available for the paper's protocols";
    let adv =
      match generic ~f adversary with Ok a -> a | Error a -> unsupported "dolev-strong" a
    in
    let o = Mewc_baselines.Dolev_strong.run ~cfg ~seed ~input ~adversary:adv () in
    Array.iteri
      (fun p d ->
        match d with
        | Some (Mewc_baselines.Dolev_strong.Decided v) ->
          decision_line p (Printf.sprintf "%S" v)
        | Some Mewc_baselines.Dolev_strong.No_decision -> decision_line p "⊥"
        | None -> ())
      o.Mewc_baselines.Dolev_strong.decisions;
    pr "\n  words %d, messages %d, signatures %d\n" o.Mewc_baselines.Dolev_strong.words
      o.Mewc_baselines.Dolev_strong.messages o.Mewc_baselines.Dolev_strong.signatures;
    Instances.Decided
  | Naive_bb ->
    if profile_on then
      die_misuse "--profile is only available for the paper's protocols";
    if scheduler <> `Legacy then
      die_misuse
        "--scheduler event-driven is only available for the paper's protocols";
    if shards > 1 then
      die_misuse "--shards is only available for the paper's protocols";
    if not (Faults.is_none faults) then
      die_misuse "fault injection is only available for the paper's protocols";
    let adv =
      match generic ~f adversary with Ok a -> a | Error a -> unsupported "naive-bb" a
    in
    let o = Mewc_baselines.Naive_bb.run ~cfg ~seed ~input ~adversary:adv () in
    Array.iteri
      (fun p d ->
        match d with
        | Some (Mewc_baselines.Naive_bb.Decided v) ->
          decision_line p (Printf.sprintf "%S" v)
        | Some Mewc_baselines.Naive_bb.No_decision -> decision_line p "⊥"
        | None -> ())
      o.Mewc_baselines.Naive_bb.decisions;
    pr "\n  words %d, messages %d, signatures %d\n" o.Mewc_baselines.Naive_bb.words
      o.Mewc_baselines.Naive_bb.messages o.Mewc_baselines.Naive_bb.signatures;
    Instances.Decided
    in
    match go () with
    | status -> status
    | exception Monitor.Violation v ->
      pr "\nmonitor violated: %s\n" (Format.asprintf "%a" Monitor.pp_violation v);
      exit 3
  in
  (match profile with
  | None -> ()
  | Some p ->
    pr "\n";
    print_string (Profile.flame p));
  match status with Instances.Decided -> () | Instances.Undecided _ -> exit 2

(* ---- `trace` --------------------------------------------------------------- *)

type trace_format = Json | Csv

(* Re-decode the run's own JSON, so every trace invocation also exercises
   the parse side of the mewc-trace/4 schema. *)
let reparsed_trace json =
  match Trace.of_json ~decode:Fun.id json with
  | Ok tr -> tr
  | Error e -> die_parse "trace does not reparse: %s" e

let causal_view json =
  match Causality.of_trace (reparsed_trace json) with
  | Ok c -> c
  | Error e -> die_parse "trace is not causally well-formed: %s" e

(* The cone analysis: a summary line per decision, then — for the requested
   pid — the cone rendered as events (default) or Graphviz (--dot). *)
let cone_text ~pid ~dot json =
  let c = causal_view json in
  if pid < 0 || pid >= Causality.n_processes c then
    die_misuse "--cone %d: no such process (n = %d)" pid
      (Causality.n_processes c);
  if Causality.cone_ids c pid = None then
    die_misuse "--cone %d: p%d never decided in this run" pid pid;
  if dot then Causality.to_dot ~cone_of:pid c
  else begin
    let b = Buffer.create 4096 in
    List.iter
      (fun (s : Causality.summary) ->
        Buffer.add_string b
          (Printf.sprintf
             "# p%d decided %S at slot %d: cone %d messages / %d words, \
              critical path %d\n"
             s.Causality.pid s.Causality.value s.Causality.slot
             s.Causality.cone_messages s.Causality.cone_words
             s.Causality.critical_path_length))
      (Causality.summaries c);
    List.iter
      (fun ev ->
        Buffer.add_string b (Format.asprintf "%a\n" (Trace.pp_event Fmt.string) ev))
      (Causality.cone c pid);
    Buffer.contents b
  end

let trace_cmd protocol n adversary f seed input format output cone dot =
  let cfg = Config.optimal ~n in
  let t = cfg.Config.t in
  let f = min f t in
  let seed = Int64.of_int seed in
  let options =
    { Instances.default_options with Instances.seed; record_trace = true }
  in
  let trace_json =
    match protocol with
    | Bb ->
      (Instances.run_bb ~cfg ~options ~input
         ~adversary:(bb_adversary ~cfg ~f ~input adversary) ())
        .Instances.trace_json
    | Weak_ba ->
      (Instances.run_weak_ba ~cfg ~options ~inputs:(Array.make n input)
         ~adversary:(wba_adversary ~cfg ~n ~t ~f adversary) ())
        .Instances.trace_json
    | Strong_ba ->
      (Instances.run_strong_ba ~cfg ~options
         ~inputs:(Array.init n (fun i -> i mod 2 = 0))
         ~adversary:(sba_adversary ~cfg ~n ~f adversary) ())
        .Instances.trace_json
    | Fallback ->
      (Instances.run_fallback ~cfg ~options
         ~inputs:(Array.init n (fun i -> Printf.sprintf "%s%d" input (i mod 3)))
         ~adversary:(epk_adversary ~cfg ~f ~input adversary) ())
        .Instances.trace_json
    | Dolev_strong | Naive_bb ->
      die_misuse
        "trace is only available for the paper's protocols (bb, weak-ba, \
         strong-ba, fallback)"
  in
  let json =
    match trace_json with
    | Some j -> j
    | None -> die_misuse "runner produced no trace (internal error)"
  in
  let text, what =
    match cone with
    | Some pid -> (cone_text ~pid ~dot json, if dot then "dot" else "cone")
    | None ->
      if dot then (Causality.to_dot (causal_view json), "dot")
      else (
        match format with
        | Json -> (Jsonx.to_string json ^ "\n", "json")
        | Csv -> (Trace.to_csv ~encode:Fun.id (reparsed_trace json), "csv"))
  in
  match output with
  | None -> print_string text
  | Some path -> (
    match open_out path with
    | exception Sys_error e -> die_misuse "cannot write %s: %s" path e
    | oc ->
      output_string oc text;
      close_out oc;
      pr "wrote %s (%s, protocol=%s adversary=%s f=%d seed=%Ld)\n" path what
        (protocol_name protocol) adversary f seed)

(* ---- `bench` --------------------------------------------------------------- *)

(* Grid selection shared by `bench` and the perf subcommands. The frontier
   grid depends on the scheduler (the standalone-fallback cap moves), and
   whatever the cap drops is carried into the report instead of silently
   vanishing. *)
let select_grid ~smoke ~frontier ~scheduler =
  if smoke && frontier then die_misuse "--smoke and --frontier are exclusive"
  else if frontier then begin
    let points, capped = Sweep.frontier_grid scheduler in
    (points, capped, "frontier")
  end
  else if smoke then (Sweep.smoke_grid, [], "smoke")
  else (Sweep.standard_grid, [], "standard")

(* --shards N sweeps the powers of two up to N (plus N itself when it is
   not one): one intra-run sharded pass per count, each gated byte-for-byte
   against the sequential rows. *)
let shard_counts_upto n =
  let rec doubling acc s = if s > n then acc else doubling (s :: acc) (2 * s) in
  let counts = doubling [] 1 in
  List.rev (if List.mem n counts then counts else n :: counts)

(* --progress: an opt-in stderr heartbeat. [heartbeat_of] returns the
   ?progress tick to thread into a sweep plus the finish hook; with the
   flag off both are inert, so the flag can never perturb stdout or any
   JSON artifact (test_cli pins that). *)
let heartbeat_of enabled ~label ~total =
  if not enabled then (None, fun () -> ())
  else
    let hb = Mewc_obs.Heartbeat.create ~total ~label () in
    (Some (fun () -> Mewc_obs.Heartbeat.tick hb),
     fun () -> Mewc_obs.Heartbeat.finish hb)

let bench_cmd jobs smoke frontier scheduler shards output progress =
  let scheduler = scheduler_of_flag scheduler in
  if shards < 1 then die_misuse "--shards %d: need at least one shard" shards;
  let grid, capped, grid_name = select_grid ~smoke ~frontier ~scheduler in
  let shard_counts = shard_counts_upto shards in
  let tick, finish =
    heartbeat_of progress ~label:"bench" ~total:(List.length grid)
  in
  let report = Sweep.run_perf ?jobs ~scheduler ~capped ~shard_counts ?progress:tick grid in
  finish ();
  pr
    "mewc bench: %d points (%s grid, %s engine), %d cores, jobs=%d\n\
    \  parallelism   %s\n\
    \  sequential    %.2fs\n\
    \  parallel      %.2fs\n\
    \  speedup       %.2fx\n\
    \  parallel output %s sequential output\n"
    (List.length report.Sweep.rows)
    grid_name
    (Engine.scheduler_to_string scheduler)
    report.Sweep.cores report.Sweep.jobs report.Sweep.parallelism
    report.Sweep.sequential_s
    report.Sweep.parallel_s report.Sweep.speedup
    (if report.Sweep.identical then "==" else "!= (BUG)");
  List.iter
    (fun (shards, wall) -> pr "  shards=%-2d     %.2fs\n" shards wall)
    report.Sweep.shard_wall_s;
  pr "  sharded output %s sequential output\n"
    (if report.Sweep.shards_identical then "==" else "!= (BUG)");
  (match report.Sweep.capped with
  | [] -> ()
  | capped ->
    pr "  capped (standalone fallback beyond n=%d): %s\n"
      (Sweep.fallback_cap scheduler)
      (String.concat ", "
         (List.map (Format.asprintf "%a" Sweep.pp_point) capped)));
  (match output with
  | None -> ()
  | Some path ->
    let oc = open_out path in
    output_string oc (Jsonx.to_string (Sweep.report_to_json report));
    output_char oc '\n';
    close_out oc;
    pr "wrote %s (schema mewc-perf/2)\n" path);
  if not (report.Sweep.identical && report.Sweep.shards_identical) then exit 1

(* ---- `perf`: the regression ledger -------------------------------------- *)

module Ascii_table = Mewc_prelude.Ascii_table

let default_ledger = "BENCH_ledger.json"

let load_ledger path =
  match Ledger.load path with
  | Ok entries -> entries
  | Error e -> die_parse "perf: %s" e

let entry_label (e : Ledger.entry) = Printf.sprintf "%s@%s" e.Ledger.rev e.Ledger.date

(* One profiled sweep; every perf subcommand funnels through here so the
   parallel-equals-sequential gate also guards the ledger's inputs. *)
let perf_sweep ~smoke ~frontier ~scheduler ~jobs =
  let grid, capped, grid_name = select_grid ~smoke ~frontier ~scheduler in
  let profile = Profile.create () in
  (* The smoke grid keeps its shard passes cheap; the real grids record the
     full doubling curve the ledger exists to track. *)
  let shard_counts = if smoke then [ 1; 2 ] else [ 1; 2; 4; 8 ] in
  let report = Sweep.run_perf ?jobs ~profile ~scheduler ~capped ~shard_counts grid in
  if not report.Sweep.identical then
    die_misuse "perf: parallel sweep diverged from sequential (BUG)";
  if not report.Sweep.shards_identical then
    die_misuse "perf: sharded sweep diverged from sequential (BUG)";
  (report, profile, grid_name)

let perf_append ledger rev date smoke frontier scheduler jobs =
  let scheduler = scheduler_of_flag scheduler in
  let report, profile, grid = perf_sweep ~smoke ~frontier ~scheduler ~jobs in
  let entry = Ledger.of_report ~rev ~date ~grid ~profile report in
  (match Ledger.append ledger entry with
  | Ok count ->
    pr "mewc perf: appended %s (%s grid, %d rows) to %s (%d entries)\n"
      (entry_label entry) grid
      (List.length report.Sweep.rows)
      ledger count
  | Error e -> die_parse "perf: %s" e);
  print_string (Profile.flame profile)

(* `perf baseline`: one timed sequential pass over the ratio grid under one
   scheduler, appended as a grid="ratio" ledger entry whose rows carry
   their own wall clocks. Two such entries (one per scheduler) are what
   `mewc report` turns into the event-vs-legacy ratio figure. *)
let perf_baseline ledger rev date scheduler progress =
  let scheduler = scheduler_of_flag scheduler in
  let tick, finish =
    heartbeat_of progress ~label:"perf baseline"
      ~total:(List.length Sweep.ratio_grid)
  in
  let rows, wall_s = Sweep.run_baseline ?progress:tick ~scheduler () in
  finish ();
  let entry = Ledger.of_baseline ~rev ~date ~scheduler ~wall_s rows in
  match Ledger.append ledger entry with
  | Ok count ->
    pr
      "mewc perf: appended ratio baseline %s (%s engine, %d rows, %.2fs) to \
       %s (%d entries)\n"
      (entry_label entry)
      (Engine.scheduler_to_string scheduler)
      (List.length rows) wall_s ledger count
  | Error e -> die_parse "perf: %s" e

let perf_list ledger =
  let entries = load_ledger ledger in
  if entries = [] then pr "mewc perf: %s has no entries\n" ledger
  else begin
    let table =
      Ascii_table.create ~title:ledger
        ~headers:
          [ "#"; "rev"; "date"; "grid"; "rows"; "seq s"; "par s"; "speedup"; "parallelism" ]
    in
    List.iteri
      (fun i (e : Ledger.entry) ->
        Ascii_table.add_row table
          [
            string_of_int i;
            e.Ledger.rev;
            e.Ledger.date;
            e.Ledger.grid;
            string_of_int (List.length e.Ledger.rows);
            Printf.sprintf "%.2f" e.Ledger.sequential_s;
            Printf.sprintf "%.2f" e.Ledger.parallel_s;
            Printf.sprintf "%.2f" e.Ledger.speedup;
            e.Ledger.parallelism;
          ])
      entries;
    Ascii_table.print table
  end

let perf_diff ledger threshold json_out against smoke scheduler jobs sel_a sel_b =
  let entries = load_ledger ledger in
  let a, b, label_a, label_b =
    if against then begin
      let grid = if smoke then "smoke" else "standard" in
      let base =
        match
          List.rev
            (List.filter (fun (e : Ledger.entry) -> String.equal e.Ledger.grid grid) entries)
        with
        | e :: _ -> e
        | [] -> die_misuse "perf: %s has no %s-grid entry to diff against" ledger grid
      in
      let scheduler = scheduler_of_flag scheduler in
      let report, profile, grid =
        perf_sweep ~smoke ~frontier:false ~scheduler ~jobs
      in
      let fresh =
        Ledger.of_report ~rev:"worktree" ~date:"uncommitted" ~grid ~profile report
      in
      (base, fresh, entry_label base, "worktree")
    end
    else
      match (sel_a, sel_b) with
      | Some sa, Some sb ->
        let pick s =
          match Ledger.find entries s with
          | Ok e -> e
          | Error e -> die_misuse "perf: %s" e
        in
        let a = pick sa and b = pick sb in
        (a, b, entry_label a, entry_label b)
      | _ ->
        die_misuse
          "perf diff: need two entry selectors (index or rev prefix; use -- \
           before negative indices) or --against-ledger"
  in
  let d = Ledger.diff ?threshold a b in
  if json_out then print_string (Jsonx.to_string (Ledger.diff_to_json d) ^ "\n")
  else print_string (Ledger.render ~label_a ~label_b d);
  if d.Ledger.regressions > 0 then exit 3

(* The CI gate: sweep the smoke grid, append it to a scratch ledger, read
   the ledger back, and require (a) byte-identical row round-trip and (b) a
   zero-delta self-diff. Catches schema drift between the ledger's writer
   and reader before a real regression ever needs it. *)
let perf_smoke ledger =
  let path, scratch =
    match ledger with
    | Some p -> (p, false)
    | None ->
      let p = Filename.temp_file "mewc-ledger-smoke" ".json" in
      Sys.remove p;
      (p, true)
  in
  let report, profile, grid =
    perf_sweep ~smoke:true ~frontier:false ~scheduler:`Legacy ~jobs:None
  in
  let entry = Ledger.of_report ~rev:"smoke" ~date:"smoke" ~grid ~profile report in
  (match Ledger.append path entry with
  | Ok _ -> ()
  | Error e -> die_parse "perf: %s" e);
  let entries = load_ledger path in
  let last =
    match Ledger.find entries "-1" with
    | Ok e -> e
    | Error e -> die_misuse "perf: %s" e
  in
  let lines rows = List.map Sweep.row_to_line rows in
  if not (List.equal String.equal (lines last.Ledger.rows) (lines report.Sweep.rows))
  then die_misuse "perf smoke: ledger rows did not round-trip byte-identically";
  let d = Ledger.diff last last in
  if
    d.Ledger.regressions <> 0
    || d.Ledger.only_a <> []
    || d.Ledger.only_b <> []
    || List.exists (fun (dl : Ledger.delta) -> dl.Ledger.words_ratio <> 1.0) d.Ledger.matched
  then die_misuse "perf smoke: self-diff is not a zero delta";
  if scratch then Sys.remove path;
  pr "mewc perf: smoke ok — %d rows appended, round-tripped byte-identically, \
      self-diff is zero\n"
    (List.length report.Sweep.rows)

(* ---- frontier CSV: measured words vs the literature's curves ------------- *)

(* A thin alias: the frontier arithmetic (the paper's n(f+1), Civit et
   al.'s n + t*f, King-Saia's n*sqrt(n)*log2(n) reference columns) lives
   in Mewc_report.Figure so `mewc report` and this subcommand can never
   disagree about a column. *)
let perf_frontier_csv ledger selector output =
  let entries = load_ledger ledger in
  let entry =
    match Ledger.find entries selector with
    | Ok e -> e
    | Error e -> die_misuse "perf: %s" e
  in
  let csv = Mewc_report.Figure.frontier_csv entry.Ledger.rows in
  match output with
  | None -> print_string csv
  | Some path -> (
    match open_out path with
    | exception Sys_error e -> die_misuse "cannot write %s: %s" path e
    | oc ->
      output_string oc csv;
      close_out oc;
      pr "wrote %s (%d rows from ledger entry %s)\n" path
        (List.length entry.Ledger.rows)
        (entry_label entry))

(* ---- `report`: figures + consistency from the committed artifacts ------- *)

(* Everything is re-parsed from disk (Mewc_report.Loader) and regenerated
   as a pure function of the parsed artifacts, so --check can byte-compare
   the regeneration against the committed docs/report/ files: a broken
   artifact dies with 124 like every other parse error, drift or a violated
   cross-artifact invariant exits 3 like every other finding. *)
let report_cmd dir out check =
  let out =
    match out with
    | Some o -> o
    | None -> Filename.concat dir (Filename.concat "docs" "report")
  in
  let artifacts =
    match Mewc_report.Loader.load_all ~dir with
    | Ok a -> a
    | Error e -> die_parse "report: %s" e
  in
  let findings = Mewc_report.Consistency.run artifacts in
  let files = Mewc_report.Report.generate artifacts in
  print_string (Mewc_report.Consistency.render findings);
  if check then begin
    let drift = Mewc_report.Report.check ~dir:out files in
    List.iter (fun d -> pr "[report-drift] %s\n" d) drift;
    if findings <> [] || drift <> [] then exit 3;
    pr "mewc report: ok — %d files in %s match regeneration, consistency clean\n"
      (List.length files) out
  end
  else begin
    Mewc_report.Report.write ~dir:out files;
    pr "mewc report: wrote %d files to %s\n" (List.length files) out;
    if findings <> [] then exit 3
  end

(* ---- fuzz --------------------------------------------------------------- *)

module Fuzz = Mewc_fuzz

let epr fmt = Printf.eprintf fmt

let fuzz_fail fmt = Printf.ksprintf (fun s -> epr "mewc fuzz: %s\n%!" s; exit 1) fmt

let pp_entry ppf (e : Fuzz.Campaign.entry) =
  Format.fprintf ppf "target=%s n=%d t=%d@ scenario: %a@ violation: %a"
    e.Fuzz.Campaign.target e.Fuzz.Campaign.n e.Fuzz.Campaign.t Fuzz.Scenario.pp
    e.Fuzz.Campaign.scenario Monitor.pp_violation e.Fuzz.Campaign.violation

(* A corpus entry that does not parse (malformed JSON, foreign schema) is a
   parse error — 124 — while an entry that parses but fails to reproduce is
   an operational failure — 1 (see the exit-code contract above). *)
let load_entry path =
  match Fuzz.Campaign.load path with
  | Ok e -> e
  | Error msg -> die_parse "fuzz: %s: %s" path msg

let fuzz_smoke ~jobs ~out =
  match Fuzz.Campaign.smoke ?jobs ~log:(fun s -> epr "mewc fuzz: %s\n%!" s) () with
  | Error msg -> fuzz_fail "smoke FAILED: %s" msg
  | Ok entry ->
    pr "mewc fuzz: smoke ok — planted ablation found, minimized, replayed\n";
    pr "  %s\n" (Format.asprintf "@[<v>%a@]" pp_entry entry);
    (match out with
    | None -> ()
    | Some path ->
      Fuzz.Campaign.save path entry;
      pr "wrote %s (schema %s)\n" path Fuzz.Campaign.schema)

let fuzz_replay path =
  let entry = load_entry path in
  match Fuzz.Campaign.replay entry with
  | Ok v ->
    pr "mewc fuzz: %s reproduced: %s\n" path
      (Format.asprintf "%a" Monitor.pp_violation v)
  | Error msg -> fuzz_fail "%s did NOT reproduce: %s" path msg

let fuzz_replay_dir dir =
  let files =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".json")
    |> List.sort String.compare
    |> List.map (Filename.concat dir)
  in
  if files = [] then fuzz_fail "no corpus entries (*.json) in %s" dir;
  List.iter fuzz_replay files;
  pr "mewc fuzz: corpus %s ok (%d entries)\n" dir (List.length files)

let fuzz_minimize path out =
  let entry = load_entry path in
  match Fuzz.Campaign.minimize entry with
  | Error msg -> fuzz_fail "%s: %s" path msg
  | Ok entry ->
    let dst = Option.value out ~default:path in
    Fuzz.Campaign.save dst entry;
    pr "mewc fuzz: minimized %s -> %s\n  %s\n" path dst
      (Format.asprintf "@[<v>%a@]" pp_entry entry)

let fuzz_campaign ~target ~jobs ~seed ~count ~out =
  let name =
    match target with
    | Some name -> name
    | None -> fuzz_fail "--target required (or use --smoke / --replay / --minimize)"
  in
  let target =
    match Fuzz.Campaign.find_target name with
    | Some t -> t
    | None ->
      fuzz_fail "unknown target %S (known: %s)" name
        (String.concat ", " (List.map Fuzz.Campaign.target_name Fuzz.Campaign.zoo))
  in
  let cfg = Config.create ~n:9 ~t:4 in
  match Fuzz.Campaign.campaign ?jobs target ~cfg ~seed ~count () with
  | None ->
    pr "mewc fuzz: %s clean — %d scenarios from seed %Ld, no violation\n" name
      count seed
  | Some f ->
    pr "mewc fuzz: %s scenario #%d violates:\n  %s\n" name f.Fuzz.Campaign.index
      (Format.asprintf "%a" Monitor.pp_violation f.Fuzz.Campaign.violation);
    let scenario, violation =
      Fuzz.Campaign.shrink target ~cfg f.Fuzz.Campaign.scenario
        f.Fuzz.Campaign.violation
    in
    let entry =
      { Fuzz.Campaign.target = name; n = 9; t = 4; scenario; violation }
    in
    pr "  minimized: %s\n" (Format.asprintf "%a" Fuzz.Scenario.pp scenario);
    (match out with
    | None -> ()
    | Some path ->
      Fuzz.Campaign.save path entry;
      pr "wrote %s (schema %s)\n" path Fuzz.Campaign.schema);
    exit 3

let fuzz_cmd target count seed jobs out replay replay_dir minimize smoke list =
  if list then
    List.iter
      (fun t ->
        pr "%s%s\n"
          (Fuzz.Campaign.target_name t)
          (if Fuzz.Campaign.target_ablated t then " (ablated)" else ""))
      Fuzz.Campaign.zoo
  else if smoke then fuzz_smoke ~jobs ~out
  else
    match (replay, replay_dir, minimize) with
    | Some path, None, None -> fuzz_replay path
    | None, Some dir, None -> fuzz_replay_dir dir
    | None, None, Some path -> fuzz_minimize path out
    | None, None, None -> fuzz_campaign ~target ~jobs ~seed ~count ~out
    | _ -> fuzz_fail "--replay, --replay-dir and --minimize are mutually exclusive"

(* ---- `chaos`: the degradation matrix ------------------------------------- *)

let parse_cell spec =
  let planted_p, planted_prof, _ = Degrade.planted_unsafe in
  let known = Degrade.protocols @ [ planted_p ] in
  let known_profs = Degrade.profiles @ [ planted_prof ] in
  let bad () =
    die_misuse
      "chaos: bad cell %S (want PROTOCOL:FAULT:LEVEL, e.g. \
       weak-ba:partition:3; protocols: %s; faults: %s; levels 0..%d)"
      spec
      (String.concat ", " known)
      (String.concat ", " known_profs)
      (Degrade.levels - 1)
  in
  match String.split_on_char ':' spec with
  | [ p; prof; l ] -> (
    match int_of_string_opt l with
    | Some level
      when List.mem p known
           && List.mem prof known_profs
           && level >= 0 && level < Degrade.levels ->
      (p, prof, level)
    | _ -> bad ())
  | _ -> bad ()

let write_matrix path cells =
  match open_out path with
  | exception Sys_error e -> die_misuse "cannot write %s: %s" path e
  | oc ->
    output_string oc (Jsonx.to_string (Degrade.matrix_to_json cells));
    output_char oc '\n';
    close_out oc;
    pr "wrote %s (schema mewc-degrade/1)\n" path

let chaos_cmd jobs smoke cell output progress =
  match cell with
  | Some spec ->
    let protocol, profile, level = parse_cell spec in
    let c =
      Degrade.run_cell ~options:Instances.default_options ~protocol ~profile
        ~level
    in
    pr "mewc chaos: %s/%s/L%d seed=%Ld -> %s\n" protocol profile level
      c.Degrade.seed
      (Format.asprintf "%a" Monitor.pp_classification c.Degrade.verdict);
    pr "  faulty %d, undecided %d, words %d, slots %d\n" c.Degrade.faulty
      c.Degrade.undecided c.Degrade.words c.Degrade.slots;
    (match c.Degrade.verdict with
    | Monitor.Safe_live -> ()
    | Monitor.Safe_stalled _ -> exit 2
    | Monitor.Unsafe _ -> exit 3)
  | None ->
    if smoke then (
      match Degrade.smoke ?jobs () with
      | Error msg ->
        epr "mewc chaos: smoke FAILED: %s\n%!" msg;
        exit 1
      | Ok cells ->
        print_string (Degrade.render cells);
        let p, prof, l = Degrade.planted_unsafe in
        pr
          "mewc chaos: smoke ok — controls and crash-only cells live, \
           duplication safe, a partition stalls, and the planted %s/%s/L%d \
           violation is still caught\n"
          p prof l;
        Option.iter (fun path -> write_matrix path cells) output)
    else begin
      let tick, finish =
        heartbeat_of progress ~label:"chaos"
          ~total:(List.length Degrade.protocols * List.length Degrade.profiles
                  * Degrade.levels)
      in
      let cells = Degrade.run_all ?jobs ?progress:tick () in
      finish ();
      print_string (Degrade.render cells);
      Option.iter (fun path -> write_matrix path cells) output;
      match Degrade.unsafe_cells cells with
      | [] -> ()
      | unsafe ->
        List.iter
          (fun (c : Degrade.cell) ->
            epr "mewc chaos: UNSAFE %s/%s/L%d (seed %Ld): %s\n" c.Degrade.protocol
              c.Degrade.profile c.Degrade.level c.Degrade.seed
              (match c.Degrade.verdict with
              | Monitor.Unsafe v -> Format.asprintf "%a" Monitor.pp_violation v
              | _ -> assert false))
          unsafe;
        exit 3
    end

(* ---- `throughput`: the repeated-BA service ------------------------------- *)

let throughput_cmd smoke n workload depth rev date ledger output scheduler
    shards progress =
  let scheduler = scheduler_of_flag scheduler in
  if shards < 1 then die_misuse "--shards %d: need at least one shard" shards;
  let options = { Engine.default_options with Engine.scheduler; shards } in
  if smoke then (
    match Throughput.smoke ~options () with
    | Error msg ->
      epr "mewc throughput: smoke FAILED: %s\n%!" msg;
      exit 1
    | Ok entry ->
      print_string (Throughput.render entry);
      pr
        "mewc throughput: smoke ok — grid deterministic, deep pipeline \
         byte-equal to the sequential oracle and strictly faster, SLO \
         controls at 1.0\n")
  else begin
    (match workload with
    | Some w when Workload.find_preset w = None ->
      die_misuse "throughput: unknown workload %S (known: %s)" w
        (String.concat ", " Workload.preset_names)
    | _ -> ());
    (match depth with
    | Some d when not (List.mem_assoc d Throughput.depths) ->
      die_misuse "throughput: unknown depth %S (known: %s)" d
        (String.concat ", " (List.map fst Throughput.depths))
    | _ -> ());
    let ns = match n with Some n -> [ n ] | None -> [ 9; 13 ] in
    let workloads =
      match workload with Some w -> [ w ] | None -> Workload.preset_names
    in
    let depth_names =
      match depth with Some d -> [ d ] | None -> List.map fst Throughput.depths
    in
    let grid =
      List.concat_map
        (fun n ->
          List.concat_map
            (fun w -> List.map (fun d -> (n, w, d)) depth_names)
            workloads)
        ns
    in
    let tick, finish =
      heartbeat_of progress ~label:"throughput"
        ~total:(List.length grid + List.length Throughput.slo_grid)
    in
    let cells =
      try Throughput.run_grid ~options ?progress:tick grid
      with Invalid_argument e -> die_misuse "throughput: %s" e
    in
    let slo = Throughput.slo_sweep ~options ?progress:tick () in
    finish ();
    let entry = { Throughput.rev; date; cells; slo } in
    print_string (Throughput.render entry);
    (match output with
    | None -> ()
    | Some path -> (
      match open_out path with
      | exception Sys_error e -> die_misuse "cannot write %s: %s" path e
      | oc ->
        output_string oc
          (Jsonx.to_string (Throughput.to_json [ Throughput.entry_to_json entry ]));
        output_char oc '\n';
        close_out oc;
        pr "wrote %s (schema %s)\n" path Throughput.schema));
    match ledger with
    | None -> ()
    | Some path -> (
      match Throughput.append path entry with
      | Ok count ->
        pr "mewc throughput: appended %s@%s to %s (%d entries)\n" rev date path
          count
      | Error e -> die_parse "throughput: %s" e)
  end

open Cmdliner

let protocol_arg =
  Arg.(
    required
    & opt (some protocol_conv) None
    & info [ "p"; "protocol" ] ~docv:"PROTOCOL"
        ~doc:"One of bb, weak-ba, strong-ba, fallback, dolev-strong, naive-bb.")

let n_arg =
  Arg.(value & opt int 9 & info [ "n" ] ~docv:"N" ~doc:"System size (odd, n = 2t+1).")

let adversary_arg =
  Arg.(
    value & opt string "honest"
    & info [ "a"; "adversary" ] ~docv:"ADVERSARY"
        ~doc:(Printf.sprintf "One of: %s." (String.concat ", " adversaries)))

let f_arg =
  Arg.(
    value & opt int 0
    & info [ "f" ] ~docv:"F" ~doc:"Number of victims for crash-style adversaries.")

let seed_arg = Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"RNG seed.")

let input_arg =
  Arg.(
    value & opt string "value"
    & info [ "i"; "input" ] ~docv:"VALUE" ~doc:"Input / broadcast value.")

let scheduler_arg =
  Arg.(
    value & opt string "legacy"
    & info [ "scheduler" ] ~docv:"SCHEDULER"
        ~doc:
          "Engine scheduler: $(b,legacy) (the default: every process steps \
           every slot, the original lock-step loop) or $(b,event-driven) \
           (only processes with pending deliveries or an armed timer step \
           — byte-identical outputs, much faster at large n).")

let progress_arg =
  Arg.(
    value & flag
    & info [ "progress" ]
        ~doc:
          "Emit a stderr heartbeat line per completed sweep point (off by \
           default). Strictly an observer: stdout and every JSON artifact \
           are byte-identical with or without it.")

let shards_arg =
  Arg.(
    value & opt int 1
    & info [ "shards" ] ~docv:"N"
        ~doc:
          "Shard each run's step phase across $(docv) domains (default 1 = \
           fully sequential). Observationally invisible: any shard count \
           yields byte-identical traces, decisions and meters; only \
           wall-clock changes. Incompatible with $(b,--profile).")

let run_term =
  let trace =
    Arg.(
      value & flag
      & info [ "trace" ]
          ~doc:"Also print the per-slot word/message series of the run.")
  in
  let profile =
    Arg.(
      value & flag
      & info [ "profile" ]
          ~doc:
            "Print a wall-clock/allocation flame summary of the run's engine \
             phases, crypto hot paths and serialization.")
  in
  let drop =
    Arg.(
      value & opt float 0.0
      & info [ "drop" ] ~docv:"P"
          ~doc:"Per-link-delivery drop probability (fault injection).")
  in
  let dup =
    Arg.(
      value & opt float 0.0
      & info [ "dup" ] ~docv:"P" ~doc:"Per-delivery duplication probability.")
  in
  let delay =
    Arg.(
      value & opt int 0
      & info [ "delay" ] ~docv:"K"
          ~doc:"Delay affected messages by $(docv) extra slots (a δ violation).")
  in
  let delay_prob =
    Arg.(
      value & opt float 0.5
      & info [ "delay-prob" ] ~docv:"P"
          ~doc:"Probability a send is delayed (only with $(b,--delay)).")
  in
  let crash =
    Arg.(
      value & opt (list int) []
      & info [ "crash" ] ~docv:"PIDS"
          ~doc:"Crash these processes (comma-separated pids) at slot 0.")
  in
  let partition =
    Arg.(
      value & opt (list int) []
      & info [ "partition" ] ~docv:"PIDS"
          ~doc:
            "Partition these pids into an island for the whole run: links \
             crossing the cut fail both ways.")
  in
  let fault_seed =
    Arg.(
      value
      & opt (some int) None
      & info [ "fault-seed" ] ~docv:"SEED"
          ~doc:"Seed of the fault layer's coin flips (default: --seed).")
  in
  let runtime =
    Arg.(
      value & opt string "sync"
      & info [ "runtime" ] ~docv:"RUNTIME"
          ~doc:
            "Execution runtime: $(b,sync) (the default: the deterministic \
             lock-step engine, the differential oracle) or $(b,async) \
             (async-domains: one OCaml domain per process exchanging \
             mewc-wire/1 frames over a real transport, with δ a real \
             monotonic-clock deadline — honest runs only). Like \
             $(b,--scheduler), an unknown value is a misuse (exit 1).")
  in
  let delta =
    Arg.(
      value & opt float Mewc_wire.Runtime.default_delta
      & info [ "delta" ] ~docv:"SECONDS"
          ~doc:
            "The async runtime's δ: the real-time budget per slot barrier \
             (only with $(b,--runtime async)). Fault-free runs advance on \
             the Done-marker barrier and never consult it.")
  in
  Term.(
    const run_cmd $ protocol_arg $ n_arg $ adversary_arg $ f_arg $ seed_arg
    $ input_arg $ trace $ profile $ drop $ dup $ delay $ delay_prob $ crash
    $ partition $ fault_seed $ scheduler_arg $ shards_arg $ runtime $ delta)

let trace_term =
  let format =
    Arg.(
      value
      & opt (enum [ ("json", Json); ("csv", Csv) ]) Json
      & info [ "format" ] ~docv:"FORMAT" ~doc:"Output format: json or csv.")
  in
  let output =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Write to FILE instead of stdout.")
  in
  let cone =
    Arg.(
      value
      & opt (some int) None
      & info [ "cone" ] ~docv:"PID"
          ~doc:
            "Instead of the raw trace, emit the happens-before cone of \
             process $(docv)'s decision: per-decision summaries (cone \
             messages, cone words, critical-path length) followed by the \
             cone's events, or Graphviz with $(b,--dot).")
  in
  let dot =
    Arg.(
      value & flag
      & info [ "dot" ]
          ~doc:
            "Emit the message DAG as Graphviz DOT (restricted to one \
             decision's cone when combined with $(b,--cone), with its \
             critical path highlighted).")
  in
  Term.(
    const trace_cmd $ protocol_arg $ n_arg $ adversary_arg $ f_arg $ seed_arg
    $ input_arg $ format $ output $ cone $ dot)

let bench_term =
  let jobs =
    Arg.(
      value
      & opt (some int) None
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:
            "Domains for the parallel sweep pass (default: all cores, \
             $(b,Domain.recommended_domain_count)).")
  in
  let smoke =
    Arg.(
      value & flag
      & info [ "smoke" ]
          ~doc:"Run the small CI grid (n ∈ {9, 13}) instead of the standard \
                perf grid (n up to 401).")
  in
  let frontier =
    Arg.(
      value & flag
      & info [ "frontier" ]
          ~doc:
            "Run the words-vs-n frontier grid (n up to 2001; weak BA keeps \
             its faulty points throughout). The standalone-fallback cap \
             follows the scheduler and the dropped points are reported, \
             not silently truncated.")
  in
  let output =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE"
          ~doc:"Write the mewc-perf/2 JSON report to FILE.")
  in
  let shards =
    Arg.(
      value & opt int 8
      & info [ "shards" ] ~docv:"N"
          ~doc:
            "Top of the intra-run shard curve: one timed pass per power of \
             two up to $(docv) (plus $(docv) itself), each checked \
             byte-identical to the sequential rows. $(b,--shards 1) skips \
             the curve beyond the baseline pass.")
  in
  Term.(
    const bench_cmd $ jobs $ smoke $ frontier $ scheduler_arg $ shards $ output
    $ progress_arg)

let fuzz_term =
  let target =
    Arg.(
      value
      & opt (some string) None
      & info [ "t"; "target" ] ~docv:"TARGET"
          ~doc:"Fuzz target (see --list); e.g. weak-ba, weak-ba-ablated.")
  in
  let count =
    Arg.(
      value & opt int 256
      & info [ "count" ] ~docv:"N" ~doc:"Scenarios to scan in campaign mode.")
  in
  let seed =
    Arg.(
      value & opt int64 1L
      & info [ "seed" ] ~docv:"SEED" ~doc:"Campaign seed; scenario $(i,i) is a \
                                           pure function of it.")
  in
  let jobs =
    Arg.(
      value
      & opt (some int) None
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:"Domains for the parallel scan (default: all cores). The \
                outcome is independent of this.")
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE"
          ~doc:"Write the (minimized) mewc-fuzz/1 corpus entry to FILE.")
  in
  let replay =
    Arg.(
      value
      & opt (some file) None
      & info [ "replay" ] ~docv:"FILE"
          ~doc:"Replay one corpus entry; fails unless the recorded violation \
                reproduces byte-identically.")
  in
  let replay_dir =
    Arg.(
      value
      & opt (some dir) None
      & info [ "replay-dir" ] ~docv:"DIR"
          ~doc:"Replay every *.json corpus entry in DIR (the CI gate).")
  in
  let minimize =
    Arg.(
      value
      & opt (some file) None
      & info [ "minimize" ] ~docv:"FILE"
          ~doc:"Re-shrink a corpus entry and write it back (or to --output).")
  in
  let smoke =
    Arg.(
      value & flag
      & info [ "smoke" ]
          ~doc:"CI self-validation: fuzz the sound targets clean, then find, \
                shrink and replay the planted weak-ba-ablated agreement \
                violation.")
  in
  let list =
    Arg.(value & flag & info [ "list" ] ~doc:"List fuzz targets and exit.")
  in
  Term.(
    const fuzz_cmd $ target $ count $ seed $ jobs $ out $ replay $ replay_dir
    $ minimize $ smoke $ list)

let chaos_term =
  let jobs =
    Arg.(
      value
      & opt (some int) None
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:"Domains for the parallel sweep (default 1). The matrix is \
                independent of this.")
  in
  let smoke =
    Arg.(
      value & flag
      & info [ "smoke" ]
          ~doc:"CI self-validation: run the full matrix and check the \
                expected degradation envelope — controls and crash-only \
                cells safe-live, duplication never unsafe, at least one \
                partition stall, and the planted reliability violation \
                still unsafe.")
  in
  let cell =
    Arg.(
      value
      & opt (some string) None
      & info [ "cell" ] ~docv:"PROTOCOL:FAULT:LEVEL"
          ~doc:"Run one grid cell and exit 0 (live) / 2 (stalled) / 3 \
                (unsafe).")
  in
  let output =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE"
          ~doc:"Write the mewc-degrade/1 JSON matrix to FILE.")
  in
  Term.(const chaos_cmd $ jobs $ smoke $ cell $ output $ progress_arg)

let perf_cmd =
  let ledger_arg =
    Arg.(
      value & opt string default_ledger
      & info [ "ledger" ] ~docv:"FILE"
          ~doc:"Ledger file (default $(b,BENCH_ledger.json)).")
  in
  let jobs_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:"Domains for the parallel sweep pass (default: all cores).")
  in
  let smoke_arg =
    Arg.(
      value & flag
      & info [ "smoke" ]
          ~doc:"Sweep the small CI grid instead of the standard perf grid.")
  in
  let frontier_arg =
    Arg.(
      value & flag
      & info [ "frontier" ]
          ~doc:
            "Sweep the words-vs-n frontier grid (n up to 2001) instead of \
             the standard perf grid.")
  in
  let append_term =
    let rev =
      Arg.(
        value & opt string "unknown"
        & info [ "rev" ] ~docv:"REV"
            ~doc:"Git revision to record (the tool never shells out).")
    in
    let date =
      Arg.(
        value & opt string "unknown"
        & info [ "date" ] ~docv:"DATE" ~doc:"Date to record (ISO 8601).")
    in
    Term.(
      const perf_append $ ledger_arg $ rev $ date $ smoke_arg $ frontier_arg
      $ scheduler_arg $ jobs_arg)
  in
  let baseline_term =
    let rev =
      Arg.(
        value & opt string "unknown"
        & info [ "rev" ] ~docv:"REV"
            ~doc:"Git revision to record (the tool never shells out).")
    in
    let date =
      Arg.(
        value & opt string "unknown"
        & info [ "date" ] ~docv:"DATE" ~doc:"Date to record (ISO 8601).")
    in
    Term.(
      const perf_baseline $ ledger_arg $ rev $ date $ scheduler_arg
      $ progress_arg)
  in
  let diff_term =
    let threshold =
      Arg.(
        value
        & opt (some float) None
        & info [ "threshold" ] ~docv:"T"
            ~doc:
              "Regression threshold as a fraction (default 0.25): a point \
               whose word count — or the sequential wall clock — grows by \
               more than $(docv) regresses, and the command exits 3.")
    in
    let json_out =
      Arg.(
        value & flag
        & info [ "json" ] ~doc:"Emit the diff as JSON instead of a table.")
    in
    let against =
      Arg.(
        value & flag
        & info [ "against-ledger" ]
            ~doc:
              "Run a fresh sweep and diff it against the most recent ledger \
               entry on the same grid (baseline = ledger, candidate = \
               worktree).")
    in
    let sel_a =
      Arg.(
        value
        & pos 0 (some string) None
        & info [] ~docv:"A"
            ~doc:
              "Baseline entry: index (negative counts from the end; write \
               $(b,--) first) or unique rev prefix.")
    in
    let sel_b =
      Arg.(value & pos 1 (some string) None & info [] ~docv:"B" ~doc:"Candidate entry.")
    in
    Term.(
      const perf_diff $ ledger_arg $ threshold $ json_out $ against $ smoke_arg
      $ scheduler_arg $ jobs_arg $ sel_a $ sel_b)
  in
  let frontier_csv_term =
    let selector =
      Arg.(
        value
        & pos 0 string "-1"
        & info [] ~docv:"ENTRY"
            ~doc:
              "Ledger entry to dump: index (negative counts from the end; \
               default $(b,-1), the latest) or unique rev prefix.")
    in
    let output =
      Arg.(
        value
        & opt (some string) None
        & info [ "o"; "output" ] ~docv:"FILE"
            ~doc:"Write the CSV to FILE instead of stdout.")
    in
    Term.(const perf_frontier_csv $ ledger_arg $ selector $ output)
  in
  let smoke_term =
    let scratch_ledger =
      Arg.(
        value
        & opt (some string) None
        & info [ "ledger" ] ~docv:"FILE"
            ~doc:"Append to $(docv) instead of a throwaway temp file.")
    in
    Term.(const perf_smoke $ scratch_ledger)
  in
  Cmd.group
    (Cmd.info "perf"
       ~doc:
         "The perf-regression ledger (mewc-ledger/1): record benchmark runs \
          append-only, list them, and diff any two — a regression beyond \
          the threshold exits 3.")
    [
      Cmd.v
        (Cmd.info "append"
           ~doc:
             "Run the profiled perf sweep and append it (rows, wall clocks, \
              profiler rollup, caller-supplied rev/date) to the ledger.")
        append_term;
      Cmd.v (Cmd.info "list" ~doc:"List the ledger's entries.")
        Term.(const perf_list $ ledger_arg);
      Cmd.v
        (Cmd.info "diff"
           ~doc:
             "Compare two ledger entries (or --against-ledger for a fresh \
              run vs the latest entry) point by point; exits 3 on \
              regression.")
        diff_term;
      Cmd.v
        (Cmd.info "smoke"
           ~doc:
             "CI self-check: smoke sweep, append to a scratch ledger, reload \
              and require a byte-identical round-trip and a zero-delta \
              self-diff.")
        smoke_term;
      Cmd.v
        (Cmd.info "baseline"
           ~doc:
             "Run the scheduler-ratio grid sequentially under one scheduler \
              and append it as a grid=\"ratio\" ledger entry whose rows \
              carry per-point wall clocks; record one per scheduler and \
              `mewc report` derives the event-vs-legacy ratio figure from \
              them.")
        baseline_term;
      Cmd.v
        (Cmd.info "frontier-csv"
           ~doc:
             "Dump one ledger entry's words-vs-n rows as CSV, with the \
              literature's reference curves — the paper's O(n(f+1)) bound, \
              Civit et al.'s adaptive O(n + tf), King-Saia's \
              O~(sqrt n)-bits-per-processor total — as computed columns.")
        frontier_csv_term;
    ]

let throughput_term =
  let smoke =
    Arg.(
      value & flag
      & info [ "smoke" ]
          ~doc:
            "CI self-validation on the n = 9 sub-grid: the grid plus SLO \
             sweep twice, byte-identical; the deep pipeline's committed log \
             byte-equal to the sequential oracle while strictly faster; \
             fault-free SLO retention exactly 1.0.")
  in
  let n =
    Arg.(
      value
      & opt (some int) None
      & info [ "n" ] ~docv:"N"
          ~doc:"Run a single system size instead of the grid's {9, 13}.")
  in
  let workload =
    Arg.(
      value
      & opt (some string) None
      & info [ "workload" ] ~docv:"PRESET"
          ~doc:
            "Run a single workload preset (steady, bursty, heavy-tail) \
             instead of all three.")
  in
  let depth =
    Arg.(
      value
      & opt (some string) None
      & info [ "depth" ] ~docv:"DEPTH"
          ~doc:
            "Run a single pipeline depth (seq, half, deep) instead of all \
             three.")
  in
  let rev =
    Arg.(
      value & opt string "unknown"
      & info [ "rev" ] ~docv:"REV"
          ~doc:"Git revision to record (the tool never shells out).")
  in
  let date =
    Arg.(
      value & opt string "unknown"
      & info [ "date" ] ~docv:"DATE" ~doc:"Date to record (ISO 8601).")
  in
  let ledger =
    Arg.(
      value
      & opt (some string) None
      & info [ "ledger" ] ~docv:"FILE"
          ~doc:
            "Append this run to the mewc-throughput/1 ledger at $(docv) \
             (by convention $(b,BENCH_throughput.json)).")
  in
  let output =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE"
          ~doc:"Also write this run as a standalone mewc-throughput/1 document.")
  in
  Term.(
    const throughput_cmd $ smoke $ n $ workload $ depth $ rev $ date $ ledger
    $ output $ scheduler_arg $ shards_arg $ progress_arg)

let report_term =
  let dir =
    Arg.(
      value & opt string "."
      & info [ "dir" ] ~docv:"DIR"
          ~doc:
            "Directory holding the five committed artifacts \
             (BENCH_perf.json, BENCH_ledger.json, BENCH_throughput.json, \
             BENCH_degrade.json, BENCH_observability.json).")
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"DIR"
          ~doc:"Output directory (default $(b,DIR/docs/report)).")
  in
  let check =
    Arg.(
      value & flag
      & info [ "check" ]
          ~doc:
            "Verify instead of write: regenerate every report file in \
             memory, byte-compare against the committed ones, and re-run \
             the cross-artifact consistency checks (including replaying \
             the latest smoke-grid ledger entry). Exits 3 on any drift or \
             violated invariant.")
  in
  Term.(const report_cmd $ dir $ out $ check)

(* ---- `wire` ---------------------------------------------------------------- *)

(* Exit-code contract, same as everywhere else: 0 all checks pass, 1 misuse
   (no mode picked, bad flag value), 3 a finding (a codec law violation, an
   async/oracle divergence, an Unsafe chaos cell or a dead domain), 124
   cmdliner parse errors. A chaos cell that stalls but keeps safety is the
   expected degradation, not a finding. *)

let wire_fuzz ~count ~seed =
  if count < 1 then die_misuse "--count %d: need at least one case" count;
  pr "wire: codec fuzz battery, %d cases per leg, seed %Ld\n" count seed;
  match Wire.Zoo.fuzz_codec ~count ~seed with
  | Ok cases -> pr "  ok: %d cases, every codec law held\n" cases
  | Error what ->
    pr "  FINDING: %s\n" what;
    exit 3

let wire_diff ~n ~seed ~delta =
  pr "wire: differential gate, async ≡ oracle, n=%d seed=%Ld\n" n seed;
  let cfg = Config.optimal ~n in
  List.iter
    (fun e ->
      match Wire.Zoo.diff e ~cfg ~seed ~salt:0 ~delta () with
      | Ok r ->
        let s = r.Wire.Zoo.stats in
        pr "  %-9s async ≡ oracle (%d frames, %d bytes, %d encoded words)\n"
          (Wire.Zoo.entry_name e) s.Wire.Runtime.frames_sent
          s.Wire.Runtime.bytes_sent s.Wire.Runtime.encoded_words
      | Error mismatches ->
        pr "  %-9s FINDING: async diverges from the oracle:\n"
          (Wire.Zoo.entry_name e);
        List.iter (pr "    %s\n") mismatches;
        exit 3)
    Wire.Zoo.entries

let wire_chaos_plan seed =
  { Faults.byte_seed = seed; flip = 0.05; trunc = 0.05; reorder = 0.1 }

let wire_chaos_cell ~cfg ~seed e =
  let r =
    Wire.Zoo.async e ~cfg ~seed ~salt:0 ~delta:0.2 ~deadman:30.0
      ~byte_faults:(wire_chaos_plan (Int64.add seed 1L))
      ()
  in
  let s = r.Wire.Zoo.stats in
  (match r.Wire.Zoo.failures with
  | [] -> ()
  | (p, err) :: _ ->
    pr "  %-9s FINDING: byte faults killed domain p%d: %s\n"
      (Wire.Zoo.entry_name e) p err;
    exit 3);
  match r.Wire.Zoo.verdict with
  | Monitor.Unsafe v ->
    pr "  %-9s FINDING: unsafe under byte faults: %s\n" (Wire.Zoo.entry_name e)
      v.Monitor.reason;
    exit 3
  | Monitor.Safe_live ->
    pr "  %-9s safe-live    (%d frame faults, %d decode rejects, %d late)\n"
      (Wire.Zoo.entry_name e) s.Wire.Runtime.frame_faults
      s.Wire.Runtime.decode_rejects s.Wire.Runtime.late_frames
  | Monitor.Safe_stalled _ ->
    pr "  %-9s safe-stalled (%d frame faults, %d decode rejects, %d late)\n"
      (Wire.Zoo.entry_name e) s.Wire.Runtime.frame_faults
      s.Wire.Runtime.decode_rejects s.Wire.Runtime.late_frames

let wire_chaos ~n ~seed =
  pr "wire: byte-fault chaos over the sound zoo, n=%d seed=%Ld\n" n seed;
  let cfg = Config.optimal ~n in
  List.iter (wire_chaos_cell ~cfg ~seed) Wire.Zoo.entries

(* The CI leg (`dune build @wire-smoke`): fixed seeds regardless of flags so
   the alias is deterministic — a fuzz budget, the fault-free differential
   gate over all five sound protocols at n=5, and one byte-fault chaos cell
   that must stay safe. *)
let wire_smoke () =
  wire_fuzz ~count:120 ~seed:20260807L;
  wire_diff ~n:5 ~seed:1L ~delta:2.0;
  pr "wire: one byte-fault chaos cell (fallback), n=5\n";
  wire_chaos_cell ~cfg:(Config.optimal ~n:5) ~seed:11L
    (Option.get (Wire.Zoo.find "fallback"));
  pr "wire smoke: ok\n"

let wire_cmd fuzz diff chaos smoke count seed n delta =
  if not (fuzz || diff || chaos || smoke) then
    die_misuse
      "wire: pick at least one mode: --fuzz-codec, --diff, --chaos or --smoke";
  if n < 2 then die_misuse "-n %d: the wire harness needs at least 2 processes" n;
  let seed = Int64.of_int seed in
  if fuzz then wire_fuzz ~count ~seed;
  if diff then wire_diff ~n ~seed ~delta;
  if chaos then wire_chaos ~n ~seed;
  if smoke then wire_smoke ()

let wire_term =
  let fuzz =
    Arg.(
      value & flag
      & info [ "fuzz-codec" ]
          ~doc:
            "Run the codec fuzz battery: round-trip, adversarial bytes (no \
             input may make a decoder raise), single-byte mutations of valid \
             frames, and mid-stream resynchronization. Exit 3 on the first \
             law violation.")
  in
  let diff =
    Arg.(
      value & flag
      & info [ "diff" ]
          ~doc:
            "Run the differential gate: every sound protocol under both \
             runtimes, comparing per-process decision values, decided slots \
             and metered words. Exit 3 on any divergence.")
  in
  let chaos =
    Arg.(
      value & flag
      & info [ "chaos" ]
          ~doc:
            "Run one byte-fault cell (bit flips, truncations, δ-bounded \
             reorders below the codec) per sound protocol. Stalls are the \
             expected degradation; exit 3 only on an Unsafe verdict or a \
             dead domain.")
  in
  let smoke =
    Arg.(
      value & flag
      & info [ "smoke" ]
          ~doc:
            "The fixed-seed CI leg (`dune build @wire-smoke`): a fuzz \
             budget, the fault-free differential gate at n=5, and one \
             byte-fault chaos cell that must stay safe.")
  in
  let count =
    Arg.(
      value & opt int 300
      & info [ "count" ] ~docv:"N"
          ~doc:"Cases per fuzz leg (only with $(b,--fuzz-codec)).")
  in
  let n =
    Arg.(
      value & opt int 5
      & info [ "n" ] ~docv:"N"
          ~doc:"System size for $(b,--diff) and $(b,--chaos).")
  in
  let delta =
    Arg.(
      value & opt float 2.0
      & info [ "delta" ] ~docv:"SECONDS"
          ~doc:"The async runtime's per-slot δ budget for $(b,--diff).")
  in
  Term.(
    const wire_cmd $ fuzz $ diff $ chaos $ smoke $ count $ seed_arg $ n $ delta)

let cmd =
  let info =
    Cmd.info "mewc" ~version:"1.0.0"
      ~doc:
        "Adaptive Byzantine Agreement with fewer words (Cohen, Keidar, \
         Spiegelman; PODC 2022) - protocol runner"
  in
  Cmd.group info
    [
      Cmd.v (Cmd.info "run" ~doc:"Run one protocol execution.") run_term;
      Cmd.v
        (Cmd.info "trace"
           ~doc:
             "Run one protocol execution and emit its structured trace \
              (mewc-trace/4) as JSON or CSV, or a decision's happens-before \
              cone (--cone, --dot).")
        trace_term;
      perf_cmd;
      Cmd.v
        (Cmd.info "bench"
           ~doc:
             "Run the (protocol, n, f) perf sweep sequentially, \
              domain-parallel across points, and intra-run sharded at each \
              shard count up to --shards; report wall-clocks, speedup and \
              crypto-cache hit rates (mewc-perf/2), and verify every \
              parallel and sharded output is byte-identical to the \
              sequential one.")
        bench_term;
      Cmd.v
        (Cmd.info "fuzz"
           ~doc:
             "Seeded adversary fuzzing over the protocol zoo: scan random \
              corruption schedules under the safety monitors, shrink any \
              violation to a minimal scenario, and manage the replayable \
              mewc-fuzz/1 corpus.")
        fuzz_term;
      Cmd.v
        (Cmd.info "throughput"
           ~doc:
             "Run the repeated-BA throughput service over the workload × \
              pipeline-depth grid: decisions per 1k slots, words per \
              decision, batch fill and p50/p99 commit latency per cell, \
              plus the crash/drop SLO retention sweep (mewc-throughput/1); \
              optionally append to the throughput ledger.")
        throughput_term;
      Cmd.v
        (Cmd.info "report"
           ~doc:
             "Regenerate the analytics report (words-vs-n frontier against \
              the literature's reference shapes, event-vs-legacy scheduler \
              ratio, service throughput, chaos heatmap — CSV + SVG + \
              REPORT.md) from the five committed benchmark artifacts, after \
              re-checking their cross-artifact consistency invariants. \
              $(b,--check) byte-compares the regeneration against the \
              committed files instead of writing; drift or a violated \
              invariant exits 3.")
        report_term;
      Cmd.v
        (Cmd.info "chaos"
           ~doc:
             "Sweep every protocol over the fault-injection grid (crashes, \
              omissions, duplication, delays, drops, partitions at rising \
              intensity) and classify each cell safe-live / safe-stalled / \
              unsafe (mewc-degrade/1); an unsafe cell exits 3.")
        chaos_term;
      Cmd.v
        (Cmd.info "wire"
           ~doc:
             "Exercise the wire layer: the mewc-wire/1 codec fuzz battery \
              ($(b,--fuzz-codec)), the async-domains-vs-lock-step-oracle \
              differential gate ($(b,--diff)), byte-fault chaos cells \
              ($(b,--chaos)), and the fixed-seed CI leg ($(b,--smoke)). \
              Exit 3 on any finding: a codec law violation, a divergence \
              from the oracle, or an Unsafe chaos verdict.")
        wire_term;
    ]

let () = exit (Cmd.eval cmd)
