(* mewc — run one protocol execution from the command line.

   Examples:
     mewc run -p bb -n 9 --adversary crash -f 2
     mewc run -p weak-ba -n 21 --adversary busy-leaders -f 4 --seed 7 --trace
     mewc run -p strong-ba -n 9 --adversary withholding-leader
     mewc run -p fallback -n 9 --adversary equivocating-king
     mewc run -p dolev-strong -n 9
     mewc trace -p weak-ba -n 9 --adversary crash -f 2 --format csv -o run.csv
   `run` prints per-process decisions and the run's communication metering
   (with --trace, also the per-slot word series); `trace` emits the full
   structured execution trace as JSON (schema mewc-trace/1) or CSV. *)

open Mewc_sim
open Mewc_core
module Jsonx = Mewc_prelude.Jsonx

let pr fmt = Printf.printf fmt

type protocol = Bb | Weak_ba | Strong_ba | Fallback | Dolev_strong | Naive_bb

let protocol_conv =
  Cmdliner.Arg.enum
    [
      ("bb", Bb);
      ("weak-ba", Weak_ba);
      ("strong-ba", Strong_ba);
      ("fallback", Fallback);
      ("dolev-strong", Dolev_strong);
      ("naive-bb", Naive_bb);
    ]

let protocol_name = function
  | Bb -> "bb"
  | Weak_ba -> "weak-ba"
  | Strong_ba -> "strong-ba"
  | Fallback -> "fallback"
  | Dolev_strong -> "dolev-strong"
  | Naive_bb -> "naive-bb"

let adversaries =
  [
    "honest";
    "crash";
    "staggered";
    "busy-leaders";
    "lonely-decider";
    "help-spam";
    "equivocating-sender";
    "equivocating-king";
    "withholding-leader";
  ]

let victims f = List.init f (fun i -> i + 1)

(* ---- adversary resolution, shared by `run` and `trace` ------------------- *)

let honest ~pki ~secrets =
  Adversary.const (Adversary.honest ~name:"honest") ~pki ~secrets

let crash ~f ~pki ~secrets =
  Adversary.const (Adversary.crash ~victims:(victims f) ()) ~pki ~secrets

let staggered ~f ~pki ~secrets =
  Adversary.const
    (Adversary.staggered_crash ~victims:(victims f) ~every:3)
    ~pki ~secrets

let generic ~f name =
  match name with
  | "honest" -> Ok honest
  | "crash" -> Ok (crash ~f)
  | "staggered" -> Ok (staggered ~f)
  | other -> Error other

let unsupported p a =
  pr "adversary %S is not applicable to protocol %s\n" a p;
  exit 2

let bb_adversary ~cfg ~f ~input adversary =
  match generic ~f adversary with
  | Ok a -> a
  | Error "equivocating-sender" ->
    Attacks.bb_equivocating_sender ~cfg ~sender:0 ~v1:input ~v2:(input ^ "'")
  | Error a -> unsupported "bb" a

let wba_adversary ~cfg ~n ~t ~f adversary =
  match generic ~f adversary with
  | Ok a -> a
  | Error "busy-leaders" -> Attacks.wba_busy_byz_leaders ~cfg ~leaders:(victims f)
  | Error "lonely-decider" -> Attacks.wba_lonely_decider ~cfg ~lucky:(t + 1)
  | Error "help-spam" ->
    Attacks.wba_help_req_spammers ~cfg ~spammers:(List.init f (fun i -> n - 1 - i))
  | Error a -> unsupported "weak-ba" a

let sba_adversary ~cfg ~n ~f adversary =
  match generic ~f adversary with
  | Ok a -> a
  | Error "withholding-leader" ->
    Attacks.sba_withholding_leader ~cfg ~leader:0 ~lucky:(min 3 (n - 1))
  | Error a -> unsupported "strong-ba" a

let epk_adversary ~cfg ~f ~input adversary =
  match generic ~f adversary with
  | Ok a -> a
  | Error "equivocating-king" ->
    Attacks.epk_equivocating_king ~cfg ~king:1 ~v1:(input ^ "1") ~v2:(input ^ "2")
  | Error a -> unsupported "fallback" a

(* ---- `run` ---------------------------------------------------------------- *)

let print_per_slot (s : Meter.snapshot) =
  pr "\nper-slot words (silent slots omitted; %d slots total):\n"
    (List.length s.Meter.per_slot);
  pr "  %6s %8s %10s %10s\n" "slot" "words" "messages" "byz_words";
  List.iter
    (fun (r : Meter.row) ->
      if r.Meter.messages > 0 || r.Meter.byz_messages > 0 then
        pr "  %6d %8d %10d %10d\n" r.Meter.ix r.Meter.words r.Meter.messages
          r.Meter.byz_words)
    s.Meter.per_slot

let print_outcome ~show ~trace pr_decisions (o : _ Instances.agreement_outcome) =
  pr_decisions ();
  pr "\nrun summary:\n";
  pr "  f (actual corruptions)     %d%s\n" o.Instances.f
    (if o.Instances.corrupted = [] then ""
     else
       Printf.sprintf "  (%s)"
         (String.concat ", " (List.map (Printf.sprintf "p%d") o.Instances.corrupted)));
  pr "  words (correct senders)    %d\n" o.Instances.words;
  pr "  messages                   %d\n" o.Instances.messages;
  pr "  words (byzantine senders)  %d\n" o.Instances.byz_words;
  pr "  signatures created         %d\n" o.Instances.signatures;
  let c = o.Instances.crypto in
  pr "  crypto cache (hit/miss)    verify %d/%d, aggregate %d/%d\n"
    c.Mewc_crypto.Pki.verify_hits c.Mewc_crypto.Pki.verify_misses
    c.Mewc_crypto.Pki.agg_hits c.Mewc_crypto.Pki.agg_misses;
  pr "  slots simulated            %d\n" o.Instances.slots;
  if show then begin
    pr "  non-silent phases          %d\n" o.Instances.nonsilent_phases;
    pr "  help requests              %d\n" o.Instances.help_requests;
    pr "  fallback runs              %d\n" o.Instances.fallback_runs
  end;
  if trace then print_per_slot o.Instances.meter

let decision_line p d = pr "  p%-3d decided %s\n" p d

let run_cmd protocol n adversary f seed input trace =
  let cfg = Config.optimal ~n in
  let t = cfg.Config.t in
  let f = min f t in
  let seed = Int64.of_int seed in
  pr "mewc: n=%d t=%d protocol=%s adversary=%s f=%d seed=%Ld\n\n" n t
    (protocol_name protocol) adversary f seed;
  match protocol with
  | Bb ->
    let adv = bb_adversary ~cfg ~f ~input adversary in
    let o = Instances.run_bb ~cfg ~seed ~input ~adversary:adv () in
    print_outcome ~show:true ~trace
      (fun () ->
        Array.iteri
          (fun p d ->
            if not (List.mem p o.Instances.corrupted) then
              decision_line p
                (match d with
                | Some (Adaptive_bb.Decided v) -> Printf.sprintf "%S" v
                | Some Adaptive_bb.No_decision -> "⊥"
                | None -> "nothing (bug)"))
          o.Instances.decisions)
      o
  | Weak_ba ->
    let adv = wba_adversary ~cfg ~n ~t ~f adversary in
    let o =
      Instances.run_weak_ba ~cfg ~seed ~inputs:(Array.make n input) ~adversary:adv ()
    in
    print_outcome ~show:true ~trace
      (fun () ->
        Array.iteri
          (fun p d ->
            if not (List.mem p o.Instances.corrupted) then
              decision_line p
                (match d with
                | Some (Instances.Weak_str.Value v) -> Printf.sprintf "%S" v
                | Some Instances.Weak_str.Bot -> "⊥"
                | None -> "nothing (bug)"))
          o.Instances.decisions)
      o
  | Strong_ba ->
    let adv = sba_adversary ~cfg ~n ~f adversary in
    let o =
      Instances.run_strong_ba ~cfg ~seed
        ~inputs:(Array.init n (fun i -> i mod 2 = 0))
        ~adversary:adv ()
    in
    print_outcome ~show:true ~trace
      (fun () ->
        Array.iteri
          (fun p d ->
            if not (List.mem p o.Instances.corrupted) then
              decision_line p
                (match d with
                | Some b -> string_of_bool b
                | None -> "nothing (bug)"))
          o.Instances.decisions)
      o
  | Fallback ->
    let adv = epk_adversary ~cfg ~f ~input adversary in
    let o =
      Instances.run_fallback ~cfg ~seed
        ~inputs:(Array.init n (fun i -> Printf.sprintf "%s%d" input (i mod 3)))
        ~adversary:adv ()
    in
    print_outcome ~show:false ~trace
      (fun () ->
        Array.iteri
          (fun p d ->
            if not (List.mem p o.Instances.corrupted) then
              decision_line p
                (match d with Some v -> Printf.sprintf "%S" v | None -> "nothing (bug)"))
          o.Instances.decisions)
      o
  | Dolev_strong ->
    let adv =
      match generic ~f adversary with Ok a -> a | Error a -> unsupported "dolev-strong" a
    in
    let o = Mewc_baselines.Dolev_strong.run ~cfg ~seed ~input ~adversary:adv () in
    Array.iteri
      (fun p d ->
        match d with
        | Some (Mewc_baselines.Dolev_strong.Decided v) ->
          decision_line p (Printf.sprintf "%S" v)
        | Some Mewc_baselines.Dolev_strong.No_decision -> decision_line p "⊥"
        | None -> ())
      o.Mewc_baselines.Dolev_strong.decisions;
    pr "\n  words %d, messages %d, signatures %d\n" o.Mewc_baselines.Dolev_strong.words
      o.Mewc_baselines.Dolev_strong.messages o.Mewc_baselines.Dolev_strong.signatures
  | Naive_bb ->
    let adv =
      match generic ~f adversary with Ok a -> a | Error a -> unsupported "naive-bb" a
    in
    let o = Mewc_baselines.Naive_bb.run ~cfg ~seed ~input ~adversary:adv () in
    Array.iteri
      (fun p d ->
        match d with
        | Some (Mewc_baselines.Naive_bb.Decided v) ->
          decision_line p (Printf.sprintf "%S" v)
        | Some Mewc_baselines.Naive_bb.No_decision -> decision_line p "⊥"
        | None -> ())
      o.Mewc_baselines.Naive_bb.decisions;
    pr "\n  words %d, messages %d, signatures %d\n" o.Mewc_baselines.Naive_bb.words
      o.Mewc_baselines.Naive_bb.messages o.Mewc_baselines.Naive_bb.signatures

(* ---- `trace` --------------------------------------------------------------- *)

type trace_format = Json | Csv

let trace_cmd protocol n adversary f seed input format output =
  let cfg = Config.optimal ~n in
  let t = cfg.Config.t in
  let f = min f t in
  let seed = Int64.of_int seed in
  let trace_json =
    match protocol with
    | Bb ->
      (Instances.run_bb ~cfg ~seed ~record_trace:true ~input
         ~adversary:(bb_adversary ~cfg ~f ~input adversary) ())
        .Instances.trace_json
    | Weak_ba ->
      (Instances.run_weak_ba ~cfg ~seed ~record_trace:true
         ~inputs:(Array.make n input)
         ~adversary:(wba_adversary ~cfg ~n ~t ~f adversary) ())
        .Instances.trace_json
    | Strong_ba ->
      (Instances.run_strong_ba ~cfg ~seed ~record_trace:true
         ~inputs:(Array.init n (fun i -> i mod 2 = 0))
         ~adversary:(sba_adversary ~cfg ~n ~f adversary) ())
        .Instances.trace_json
    | Fallback ->
      (Instances.run_fallback ~cfg ~seed ~record_trace:true
         ~inputs:(Array.init n (fun i -> Printf.sprintf "%s%d" input (i mod 3)))
         ~adversary:(epk_adversary ~cfg ~f ~input adversary) ())
        .Instances.trace_json
    | Dolev_strong | Naive_bb ->
      pr "trace is only available for the paper's protocols (bb, weak-ba, \
          strong-ba, fallback)\n";
      exit 2
  in
  let json =
    match trace_json with
    | Some j -> j
    | None -> failwith "mewc trace: runner produced no trace"
  in
  let text =
    match format with
    | Json -> Jsonx.to_string json ^ "\n"
    | Csv -> (
      (* The CSV goes through of_json, so every export also exercises the
         parse side of the mewc-trace/1 schema. *)
      match Trace.of_json ~decode:Fun.id json with
      | Ok tr -> Trace.to_csv ~encode:Fun.id tr
      | Error e -> failwith ("mewc trace: trace does not reparse: " ^ e))
  in
  match output with
  | None -> print_string text
  | Some path -> (
    match open_out path with
    | exception Sys_error e ->
      Printf.eprintf "mewc trace: cannot write %s: %s\n" path e;
      exit 1
    | oc ->
      output_string oc text;
      close_out oc;
      pr "wrote %s (%s, protocol=%s adversary=%s f=%d seed=%Ld)\n" path
        (match format with Json -> "json" | Csv -> "csv")
        (protocol_name protocol) adversary f seed)

(* ---- `bench` --------------------------------------------------------------- *)

let bench_cmd jobs smoke output =
  let grid = if smoke then Sweep.smoke_grid else Sweep.standard_grid in
  let report = Sweep.run_perf ?jobs grid in
  pr
    "mewc bench: %d points (%s grid), %d cores, jobs=%d\n\
    \  sequential    %.2fs\n\
    \  parallel      %.2fs\n\
    \  speedup       %.2fx\n\
    \  parallel output %s sequential output\n"
    (List.length report.Sweep.rows)
    (if smoke then "smoke" else "standard")
    report.Sweep.cores report.Sweep.jobs report.Sweep.sequential_s
    report.Sweep.parallel_s report.Sweep.speedup
    (if report.Sweep.identical then "==" else "!= (BUG)");
  (match output with
  | None -> ()
  | Some path ->
    let oc = open_out path in
    output_string oc (Jsonx.to_string (Sweep.report_to_json report));
    output_char oc '\n';
    close_out oc;
    pr "wrote %s (schema mewc-perf/1)\n" path);
  if not report.Sweep.identical then exit 1

(* ---- fuzz --------------------------------------------------------------- *)

module Fuzz = Mewc_fuzz

let epr fmt = Printf.eprintf fmt

let fuzz_fail fmt = Printf.ksprintf (fun s -> epr "mewc fuzz: %s\n%!" s; exit 1) fmt

let pp_entry ppf (e : Fuzz.Campaign.entry) =
  Format.fprintf ppf "target=%s n=%d t=%d@ scenario: %a@ violation: %a"
    e.Fuzz.Campaign.target e.Fuzz.Campaign.n e.Fuzz.Campaign.t Fuzz.Scenario.pp
    e.Fuzz.Campaign.scenario Monitor.pp_violation e.Fuzz.Campaign.violation

let load_entry path =
  match Fuzz.Campaign.load path with
  | Ok e -> e
  | Error msg -> fuzz_fail "%s: %s" path msg

let fuzz_smoke ~jobs ~out =
  match Fuzz.Campaign.smoke ?jobs ~log:(fun s -> epr "mewc fuzz: %s\n%!" s) () with
  | Error msg -> fuzz_fail "smoke FAILED: %s" msg
  | Ok entry ->
    pr "mewc fuzz: smoke ok — planted ablation found, minimized, replayed\n";
    pr "  %s\n" (Format.asprintf "@[<v>%a@]" pp_entry entry);
    (match out with
    | None -> ()
    | Some path ->
      Fuzz.Campaign.save path entry;
      pr "wrote %s (schema %s)\n" path Fuzz.Campaign.schema)

let fuzz_replay path =
  let entry = load_entry path in
  match Fuzz.Campaign.replay entry with
  | Ok v ->
    pr "mewc fuzz: %s reproduced: %s\n" path
      (Format.asprintf "%a" Monitor.pp_violation v)
  | Error msg -> fuzz_fail "%s did NOT reproduce: %s" path msg

let fuzz_replay_dir dir =
  let files =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".json")
    |> List.sort String.compare
    |> List.map (Filename.concat dir)
  in
  if files = [] then fuzz_fail "no corpus entries (*.json) in %s" dir;
  List.iter fuzz_replay files;
  pr "mewc fuzz: corpus %s ok (%d entries)\n" dir (List.length files)

let fuzz_minimize path out =
  let entry = load_entry path in
  match Fuzz.Campaign.minimize entry with
  | Error msg -> fuzz_fail "%s: %s" path msg
  | Ok entry ->
    let dst = Option.value out ~default:path in
    Fuzz.Campaign.save dst entry;
    pr "mewc fuzz: minimized %s -> %s\n  %s\n" path dst
      (Format.asprintf "@[<v>%a@]" pp_entry entry)

let fuzz_campaign ~target ~jobs ~seed ~count ~out =
  let name =
    match target with
    | Some name -> name
    | None -> fuzz_fail "--target required (or use --smoke / --replay / --minimize)"
  in
  let target =
    match Fuzz.Campaign.find_target name with
    | Some t -> t
    | None ->
      fuzz_fail "unknown target %S (known: %s)" name
        (String.concat ", " (List.map Fuzz.Campaign.target_name Fuzz.Campaign.zoo))
  in
  let cfg = Config.create ~n:9 ~t:4 in
  match Fuzz.Campaign.campaign ?jobs target ~cfg ~seed ~count () with
  | None ->
    pr "mewc fuzz: %s clean — %d scenarios from seed %Ld, no violation\n" name
      count seed
  | Some f ->
    pr "mewc fuzz: %s scenario #%d violates:\n  %s\n" name f.Fuzz.Campaign.index
      (Format.asprintf "%a" Monitor.pp_violation f.Fuzz.Campaign.violation);
    let scenario, violation =
      Fuzz.Campaign.shrink target ~cfg f.Fuzz.Campaign.scenario
        f.Fuzz.Campaign.violation
    in
    let entry =
      { Fuzz.Campaign.target = name; n = 9; t = 4; scenario; violation }
    in
    pr "  minimized: %s\n" (Format.asprintf "%a" Fuzz.Scenario.pp scenario);
    (match out with
    | None -> ()
    | Some path ->
      Fuzz.Campaign.save path entry;
      pr "wrote %s (schema %s)\n" path Fuzz.Campaign.schema);
    exit 3

let fuzz_cmd target count seed jobs out replay replay_dir minimize smoke list =
  if list then
    List.iter
      (fun t ->
        pr "%s%s\n"
          (Fuzz.Campaign.target_name t)
          (if Fuzz.Campaign.target_ablated t then " (ablated)" else ""))
      Fuzz.Campaign.zoo
  else if smoke then fuzz_smoke ~jobs ~out
  else
    match (replay, replay_dir, minimize) with
    | Some path, None, None -> fuzz_replay path
    | None, Some dir, None -> fuzz_replay_dir dir
    | None, None, Some path -> fuzz_minimize path out
    | None, None, None -> fuzz_campaign ~target ~jobs ~seed ~count ~out
    | _ -> fuzz_fail "--replay, --replay-dir and --minimize are mutually exclusive"

open Cmdliner

let protocol_arg =
  Arg.(
    required
    & opt (some protocol_conv) None
    & info [ "p"; "protocol" ] ~docv:"PROTOCOL"
        ~doc:"One of bb, weak-ba, strong-ba, fallback, dolev-strong, naive-bb.")

let n_arg =
  Arg.(value & opt int 9 & info [ "n" ] ~docv:"N" ~doc:"System size (odd, n = 2t+1).")

let adversary_arg =
  Arg.(
    value & opt string "honest"
    & info [ "a"; "adversary" ] ~docv:"ADVERSARY"
        ~doc:(Printf.sprintf "One of: %s." (String.concat ", " adversaries)))

let f_arg =
  Arg.(
    value & opt int 0
    & info [ "f" ] ~docv:"F" ~doc:"Number of victims for crash-style adversaries.")

let seed_arg = Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"RNG seed.")

let input_arg =
  Arg.(
    value & opt string "value"
    & info [ "i"; "input" ] ~docv:"VALUE" ~doc:"Input / broadcast value.")

let run_term =
  let trace =
    Arg.(
      value & flag
      & info [ "trace" ]
          ~doc:"Also print the per-slot word/message series of the run.")
  in
  Term.(
    const run_cmd $ protocol_arg $ n_arg $ adversary_arg $ f_arg $ seed_arg
    $ input_arg $ trace)

let trace_term =
  let format =
    Arg.(
      value
      & opt (enum [ ("json", Json); ("csv", Csv) ]) Json
      & info [ "format" ] ~docv:"FORMAT" ~doc:"Output format: json or csv.")
  in
  let output =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Write to FILE instead of stdout.")
  in
  Term.(
    const trace_cmd $ protocol_arg $ n_arg $ adversary_arg $ f_arg $ seed_arg
    $ input_arg $ format $ output)

let bench_term =
  let jobs =
    Arg.(
      value
      & opt (some int) None
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:
            "Domains for the parallel sweep pass (default: all cores, \
             $(b,Domain.recommended_domain_count)).")
  in
  let smoke =
    Arg.(
      value & flag
      & info [ "smoke" ]
          ~doc:"Run the small CI grid (n ∈ {9, 13}) instead of the standard \
                perf grid (n up to 401).")
  in
  let output =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE"
          ~doc:"Write the mewc-perf/1 JSON report to FILE.")
  in
  Term.(const bench_cmd $ jobs $ smoke $ output)

let fuzz_term =
  let target =
    Arg.(
      value
      & opt (some string) None
      & info [ "t"; "target" ] ~docv:"TARGET"
          ~doc:"Fuzz target (see --list); e.g. weak-ba, weak-ba-ablated.")
  in
  let count =
    Arg.(
      value & opt int 256
      & info [ "count" ] ~docv:"N" ~doc:"Scenarios to scan in campaign mode.")
  in
  let seed =
    Arg.(
      value & opt int64 1L
      & info [ "seed" ] ~docv:"SEED" ~doc:"Campaign seed; scenario $(i,i) is a \
                                           pure function of it.")
  in
  let jobs =
    Arg.(
      value
      & opt (some int) None
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:"Domains for the parallel scan (default: all cores). The \
                outcome is independent of this.")
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE"
          ~doc:"Write the (minimized) mewc-fuzz/1 corpus entry to FILE.")
  in
  let replay =
    Arg.(
      value
      & opt (some file) None
      & info [ "replay" ] ~docv:"FILE"
          ~doc:"Replay one corpus entry; fails unless the recorded violation \
                reproduces byte-identically.")
  in
  let replay_dir =
    Arg.(
      value
      & opt (some dir) None
      & info [ "replay-dir" ] ~docv:"DIR"
          ~doc:"Replay every *.json corpus entry in DIR (the CI gate).")
  in
  let minimize =
    Arg.(
      value
      & opt (some file) None
      & info [ "minimize" ] ~docv:"FILE"
          ~doc:"Re-shrink a corpus entry and write it back (or to --output).")
  in
  let smoke =
    Arg.(
      value & flag
      & info [ "smoke" ]
          ~doc:"CI self-validation: fuzz the sound targets clean, then find, \
                shrink and replay the planted weak-ba-ablated agreement \
                violation.")
  in
  let list =
    Arg.(value & flag & info [ "list" ] ~doc:"List fuzz targets and exit.")
  in
  Term.(
    const fuzz_cmd $ target $ count $ seed $ jobs $ out $ replay $ replay_dir
    $ minimize $ smoke $ list)

let cmd =
  let info =
    Cmd.info "mewc" ~version:"1.0.0"
      ~doc:
        "Adaptive Byzantine Agreement with fewer words (Cohen, Keidar, \
         Spiegelman; PODC 2022) - protocol runner"
  in
  Cmd.group info
    [
      Cmd.v (Cmd.info "run" ~doc:"Run one protocol execution.") run_term;
      Cmd.v
        (Cmd.info "trace"
           ~doc:
             "Run one protocol execution and emit its structured trace \
              (mewc-trace/1) as JSON or CSV.")
        trace_term;
      Cmd.v
        (Cmd.info "bench"
           ~doc:
             "Run the (protocol, n, f) perf sweep sequentially and \
              domain-parallel, report wall-clock, speedup and crypto-cache \
              hit rates (mewc-perf/1), and verify the parallel output is \
              byte-identical to the sequential one.")
        bench_term;
      Cmd.v
        (Cmd.info "fuzz"
           ~doc:
             "Seeded adversary fuzzing over the protocol zoo: scan random \
              corruption schedules under the safety monitors, shrink any \
              violation to a minimal scenario, and manage the replayable \
              mewc-fuzz/1 corpus.")
        fuzz_term;
    ]

let () = exit (Cmd.eval cmd)
