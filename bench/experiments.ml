(* The experiment harness behind `dune exec bench/main.exe`.

   The paper is a brief announcement whose evaluation artifacts are Table 1
   (communication-complexity bounds) and Figure 1 (protocol composition),
   plus in-text complexity claims in §5.1, §6.1 and §7.1. Each function here
   regenerates one of them from measured executions; DESIGN.md §3 maps
   experiment ids to paper artifacts, and EXPERIMENTS.md records
   paper-vs-measured. *)

open Mewc_prelude
open Mewc_sim
open Mewc_core
module W = Instances.Weak_str

let honest ~pki ~secrets =
  Adversary.const (Adversary.honest ~name:"honest") ~pki ~secrets
let crash_first f ~pki ~secrets =
  Adversary.const
    (Adversary.crash ~victims:(List.init f (fun i -> i + 1)) ())
    ~pki ~secrets

let cfg n = Config.optimal ~n

(* Word counts for the standard sweeps. *)
let bb_words ~n ~f =
  let o = Instances.run_bb ~cfg:(cfg n) ~input:"payload" ~adversary:(crash_first f) () in
  o.Instances.words

let weak_words ~n ~f =
  let o =
    Instances.run_weak_ba ~cfg:(cfg n) ~inputs:(Array.make n "v")
      ~adversary:(crash_first f) ()
  in
  o.Instances.words

let strong_words ~n ~f =
  let o =
    Instances.run_strong_ba ~cfg:(cfg n) ~inputs:(Array.make n true)
      ~adversary:(crash_first f) ()
  in
  o.Instances.words

let epk_words ~n ~f =
  let o =
    Instances.run_fallback ~cfg:(cfg n)
      ~inputs:(Array.init n (fun i -> Printf.sprintf "x%d" (i mod 3)))
      ~adversary:(crash_first f) ()
  in
  o.Instances.words

let fs = [ "0"; "1"; "t/2"; "t" ]
let f_of_spec ~t = function
  | "0" -> 0
  | "1" -> min 1 t
  | "t/2" -> t / 2
  | "t" -> t
  | s -> failwith ("unknown f spec " ^ s)

let sweep_table ~title ~measure ~ns =
  let table =
    Ascii_table.create ~title
      ~headers:[ "n"; "t"; "f"; "words"; "words/n"; "words/(n(f+1))" ]
  in
  List.iter
    (fun n ->
      let t = (cfg n).Config.t in
      List.iter
        (fun spec ->
          let f = f_of_spec ~t spec in
          let w = measure ~n ~f in
          Ascii_table.add_row table
            [
              string_of_int n;
              string_of_int t;
              Printf.sprintf "%s (%d)" spec f;
              string_of_int w;
              Printf.sprintf "%.1f" (float_of_int w /. float_of_int n);
              Printf.sprintf "%.1f" (float_of_int w /. float_of_int (n * (f + 1)));
            ])
        fs)
    ns;
  table

(* ---- Table 1 rows ------------------------------------------------------ *)

let table1_bb () =
  sweep_table
    ~title:
      "[T1-BB] Byzantine Broadcast (Algorithms 1+2) - paper bound: O(n(f+1)) \
       words\n\
       (crash adversaries; sender correct; words sent by correct processes)"
    ~measure:bb_words ~ns:[ 9; 17; 25; 33 ]

let table1_weak () =
  sweep_table
    ~title:
      "[T1-WEAK] Weak BA (Algorithms 3+4), multi-valued - paper bound: \
       O(n(f+1)) words"
    ~measure:weak_words ~ns:[ 9; 17; 25; 33 ]

let table1_strong () =
  let table =
    Ascii_table.create
      ~title:
        "[T1-STRONG] Strong BA - paper bounds: O(n) binary with f=0 \
         (Algorithm 5); O(n^2) multi-valued (fallback class)"
      ~headers:[ "protocol"; "n"; "f"; "words"; "words/n"; "words/n^2" ]
  in
  List.iter
    (fun n ->
      let w = strong_words ~n ~f:0 in
      Ascii_table.add_row table
        [
          "Alg 5 (binary)";
          string_of_int n;
          "0";
          string_of_int w;
          Printf.sprintf "%.1f" (float_of_int w /. float_of_int n);
          Printf.sprintf "%.2f" (float_of_int w /. float_of_int (n * n));
        ])
    [ 9; 17; 33; 65 ];
  List.iter
    (fun n ->
      let t = (cfg n).Config.t in
      let w = strong_words ~n ~f:t in
      Ascii_table.add_row table
        [
          "Alg 5 + fallback";
          string_of_int n;
          Printf.sprintf "t (%d)" t;
          string_of_int w;
          Printf.sprintf "%.1f" (float_of_int w /. float_of_int n);
          Printf.sprintf "%.2f" (float_of_int w /. float_of_int (n * n));
        ])
    [ 9; 17; 33 ];
  List.iter
    (fun n ->
      let o =
        Instances.run_binary_bb ~cfg:(cfg n) ~input:true ~adversary:honest ()
      in
      let w = o.Instances.words in
      Ascii_table.add_row table
        [
          "binary BB (§5 + Alg 5)";
          string_of_int n;
          "0";
          string_of_int w;
          Printf.sprintf "%.1f" (float_of_int w /. float_of_int n);
          Printf.sprintf "%.2f" (float_of_int w /. float_of_int (n * n));
        ])
    [ 9; 17; 33; 65 ];
  List.iter
    (fun n ->
      let w = epk_words ~n ~f:0 in
      Ascii_table.add_row table
        [
          "A_fallback (multi-valued)";
          string_of_int n;
          "0";
          string_of_int w;
          Printf.sprintf "%.1f" (float_of_int w /. float_of_int n);
          Printf.sprintf "%.2f" (float_of_int w /. float_of_int (n * n));
        ])
    [ 9; 17; 33; 65 ];
  table

let table1_fit () =
  let table =
    Ascii_table.create
      ~title:
        "[T1-FIT] Measured scaling exponents (log-log least squares over n)\n\
         A slope near 1 means linear words in n, near 2 quadratic."
      ~headers:[ "series"; "paper bound"; "measured exponent"; "r^2" ]
  in
  let fit name bound measure ns =
    let pts =
      List.map (fun n -> (float_of_int n, float_of_int (measure n))) ns
    in
    let f = Stats.loglog_fit pts in
    Ascii_table.add_row table
      [ name; bound; Printf.sprintf "%.2f" f.Stats.slope; Printf.sprintf "%.3f" f.Stats.r2 ]
  in
  fit "BB, f=0" "O(n)" (fun n -> bb_words ~n ~f:0) [ 9; 17; 33; 65 ];
  fit "BB, f=t" "O(nt) = O(n^2)" (fun n -> bb_words ~n ~f:(cfg n).Config.t) [ 9; 17; 33 ];
  fit "Weak BA, f=0" "O(n)" (fun n -> weak_words ~n ~f:0) [ 9; 17; 33; 65 ];
  fit "Weak BA, f=t" "O(n^2)*" (fun n -> weak_words ~n ~f:(cfg n).Config.t) [ 9; 17; 33 ];
  fit "Strong BA (Alg 5), f=0" "O(n)" (fun n -> strong_words ~n ~f:0) [ 9; 17; 33; 65 ];
  fit "Strong BA (Alg 5), f=1" "O(n^2)*" (fun n -> strong_words ~n ~f:1) [ 9; 17; 33 ];
  fit "A_fallback, f=0" "O(n^2)" (fun n -> epk_words ~n ~f:0) [ 9; 17; 33; 65 ];
  fit "Dolev-Strong BB, f=0" "O(n^2) (baseline)"
    (fun n ->
      (Mewc_baselines.Dolev_strong.run ~cfg:(cfg n) ~input:"v" ~adversary:honest ())
        .Mewc_baselines.Dolev_strong.words)
    [ 9; 17; 33; 65 ];
  Ascii_table.add_row table
    [ "(*)"; "our A_fallback is O(n^2 (k+1));"; "see DESIGN.md"; "" ];
  table

(* ---- Figure 1 ----------------------------------------------------------- *)

let figure1 () =
  Composition.reset ();
  (* Exercise every box of the figure: BB (which contains weak BA), weak BA
     driven into its fallback, and the failure-free strong BA with a crash
     (which invokes the fallback too). *)
  let n = 9 in
  let t = (cfg n).Config.t in
  ignore (Instances.run_bb ~cfg:(cfg n) ~input:"v" ~adversary:honest ());
  ignore
    (Instances.run_weak_ba ~cfg:(cfg n) ~inputs:(Array.make n "v")
       ~adversary:(crash_first t) ());
  ignore
    (Instances.run_strong_ba ~cfg:(cfg n) ~inputs:(Array.make n true)
       ~adversary:(crash_first 1) ());
  let buf = Buffer.create 256 in
  let fmt = Format.formatter_of_buffer buf in
  Format.fprintf fmt
    "[FIG1] Relation between the Byzantine Agreement solutions, as observed \
     at run time\n\
     (paper Figure 1: \"each box uses the primitives within it\")@.@.";
  Composition.pp_diagram fmt ();
  Format.pp_print_flush fmt ();
  Buffer.contents buf

(* ---- In-text complexity claims ------------------------------------------ *)

let claim_adaptivity () =
  (* §5.1/§6.1: non-silent phases and words grow linearly with f at fixed n,
     both for crash failures and for busy Byzantine leaders. *)
  let n = 21 in
  let t = (cfg n).Config.t in
  let threshold = (n - t - 1) / 2 in
  let table =
    Ascii_table.create
      ~title:
        (Printf.sprintf
           "[C-ADAPT] Adaptivity at fixed n=%d (t=%d): words vs f\n\
            paper: words = O(n(f+1)); fallback reachable only when f >= %d"
           n t threshold)
      ~headers:
        [ "f"; "adversary"; "words"; "words/(n(f+1))"; "non-silent phases"; "fallback runs" ]
  in
  List.iter
    (fun f ->
      let o =
        Instances.run_weak_ba ~cfg:(cfg n) ~inputs:(Array.make n "v")
          ~adversary:(crash_first f) ()
      in
      Ascii_table.add_row table
        [
          string_of_int f;
          "crash";
          string_of_int o.Instances.words;
          Printf.sprintf "%.1f" (float_of_int o.Instances.words /. float_of_int (n * (f + 1)));
          string_of_int o.Instances.nonsilent_phases;
          string_of_int o.Instances.fallback_runs;
        ])
    [ 0; 1; 2; 3; 4; 5; 7; 10 ];
  List.iter
    (fun f ->
      let leaders = List.init f (fun i -> i + 1) in
      let o =
        Instances.run_weak_ba ~cfg:(cfg n) ~inputs:(Array.make n "v")
          ~adversary:(Attacks.wba_busy_byz_leaders ~cfg:(cfg n) ~leaders)
          ()
      in
      Ascii_table.add_row table
        [
          string_of_int f;
          "busy byz leaders";
          string_of_int o.Instances.words;
          Printf.sprintf "%.1f" (float_of_int o.Instances.words /. float_of_int (n * (f + 1)));
          string_of_int o.Instances.nonsilent_phases;
          string_of_int o.Instances.fallback_runs;
        ])
    [ 1; 2; 3; 4 ];
  table

let claim_failure_free () =
  let table =
    Ascii_table.create
      ~title:
        "[C-FF] §7.1 / Lemma 8: failure-free strong BA is linear and never \
         falls back"
      ~headers:[ "n"; "words"; "words/n"; "fast deciders"; "fallback runs" ]
  in
  List.iter
    (fun n ->
      let o =
        Instances.run_strong_ba ~cfg:(cfg n) ~inputs:(Array.init n (fun i -> i mod 2 = 0))
          ~adversary:honest ()
      in
      Ascii_table.add_row table
        [
          string_of_int n;
          string_of_int o.Instances.words;
          Printf.sprintf "%.1f" (float_of_int o.Instances.words /. float_of_int n);
          string_of_int o.Instances.nonsilent_phases;
          string_of_int o.Instances.fallback_runs;
        ])
    [ 9; 17; 33; 65; 129 ];
  table

let claim_fallback_threshold () =
  (* §6.1 Lemma 6: with f < (n-t-1)/2 the fallback never runs. *)
  let n = 21 in
  let t = (cfg n).Config.t in
  let threshold = (n - t - 1) / 2 in
  let table =
    Ascii_table.create
      ~title:
        (Printf.sprintf
           "[C-FALLBACK] Lemma 6 at n=%d: fallback is reachable only once f \
            >= (n-t-1)/2 = %d"
           n threshold)
      ~headers:[ "f"; "fallback runs"; "help requests"; "words" ]
  in
  List.iter
    (fun f ->
      let o =
        Instances.run_weak_ba ~cfg:(cfg n) ~inputs:(Array.make n "v")
          ~adversary:(crash_first f) ()
      in
      Ascii_table.add_row table
        [
          string_of_int f;
          string_of_int o.Instances.fallback_runs;
          string_of_int o.Instances.help_requests;
          string_of_int o.Instances.words;
        ])
    [ threshold - 2; threshold - 1; threshold; threshold + 1; threshold + 2 ];
  table

let claim_help_linear () =
  (* §6: answers to help requests are linear in the number of requests. *)
  let n = 9 in
  let table =
    Ascii_table.create
      ~title:
        (Printf.sprintf
           "[C-HELP] Help answers are linear in the number of requests (n=%d)\n\
            Byzantine spammers inject requests after everyone has decided"
           n)
      ~headers:[ "spammers"; "words"; "extra words vs 0 spam" ]
  in
  let base = ref 0 in
  List.iter
    (fun k ->
      let spammers = List.init k (fun i -> n - 1 - i) in
      let o =
        Instances.run_weak_ba ~cfg:(cfg n) ~inputs:(Array.make n "v")
          ~adversary:
            (if k = 0 then honest
             else Attacks.wba_help_req_spammers ~cfg:(cfg n) ~spammers)
          ()
      in
      if k = 0 then base := o.Instances.words;
      Ascii_table.add_row table
        [
          string_of_int k;
          string_of_int o.Instances.words;
          string_of_int (o.Instances.words - !base);
        ])
    [ 0; 1; 2; 3; 4 ];
  table

let baseline_comparison () =
  let table =
    Ascii_table.create
      ~title:
        "[C-BASE] Byzantine Broadcast words: adaptive (this paper) vs \
         baselines\n\
         naive = sender broadcast + quadratic strong BA; DS = Dolev-Strong \
         signature chains"
      ~headers:[ "n"; "f"; "adaptive BB"; "naive BB"; "Dolev-Strong" ]
  in
  List.iter
    (fun (n, f) ->
      let adaptive = bb_words ~n ~f in
      let naive =
        (Mewc_baselines.Naive_bb.run ~cfg:(cfg n) ~input:"v"
           ~adversary:(crash_first f) ())
          .Mewc_baselines.Naive_bb.words
      in
      let ds =
        (Mewc_baselines.Dolev_strong.run ~cfg:(cfg n) ~input:"v"
           ~adversary:(crash_first f) ())
          .Mewc_baselines.Dolev_strong.words
      in
      Ascii_table.add_row table
        [
          string_of_int n;
          string_of_int f;
          string_of_int adaptive;
          string_of_int naive;
          string_of_int ds;
        ])
    [ (9, 0); (17, 0); (33, 0); (65, 0); (9, 2); (17, 2); (33, 2) ];
  table


(* ---- signature complexity ------------------------------------------------ *)

let signature_table () =
  (* Table 1's parenthetical lower bounds count signatures (Dolev-Reischuk's
     Omega(n^2) signatures for BB); threshold schemes compact many
     signatures into one word, which is exactly how the word counts dodge
     the signature bound. We report signing operations performed. *)
  let table =
    Ascii_table.create
      ~title:
        "[SIGS] Signing operations vs words\n\
         Dolev-Reischuk prove Omega(nt) *signatures* are unavoidable for BB \
         even when f=0;\nthreshold schemes dodge the *word* cost by batching \
         t+1 signatures into one word:\nevery certificate our protocols ship \
         represents t+1 signatures but costs 1 word.\nColumns below count \
         signing operations performed and words sent by correct processes."
      ~headers:[ "protocol"; "n"; "f"; "signatures"; "words"; "sigs/n" ]
  in
  let row proto n f sigs words =
    Ascii_table.add_row table
      [
        proto;
        string_of_int n;
        string_of_int f;
        string_of_int sigs;
        string_of_int words;
        Printf.sprintf "%.1f" (float_of_int sigs /. float_of_int n);
      ]
  in
  List.iter
    (fun n ->
      let o = Instances.run_bb ~cfg:(cfg n) ~input:"v" ~adversary:honest () in
      row "adaptive BB" n 0 o.Instances.signatures o.Instances.words;
      let t = (cfg n).Config.t in
      let o = Instances.run_bb ~cfg:(cfg n) ~input:"v" ~adversary:(crash_first t) () in
      row "adaptive BB" n t o.Instances.signatures o.Instances.words;
      let d =
        Mewc_baselines.Dolev_strong.run ~cfg:(cfg n) ~input:"v" ~adversary:honest ()
      in
      row "Dolev-Strong BB" n 0 d.Mewc_baselines.Dolev_strong.signatures
        d.Mewc_baselines.Dolev_strong.words)
    [ 9; 17; 33 ];
  table

(* ---- latency (rounds-to-decision) --------------------------------------- *)

let latency_table () =
  let table =
    Ascii_table.create
      ~title:
        "[LATENCY] Slots (δ units) until the last correct process decides\n\
         early-stopping behaviour: latency tracks actual failures, not t"
      ~headers:[ "protocol"; "n"; "adversary"; "latency (slots)" ]
  in
  let n = 9 in
  let row proto adversary_name latency =
    Ascii_table.add_row table
      [ proto; string_of_int n; adversary_name; string_of_int latency ]
  in
  let weak adversary = (Instances.run_weak_ba ~cfg:(cfg n) ~inputs:(Array.make n "v") ~adversary ()).Instances.latency in
  row "weak BA" "honest" (weak honest);
  row "weak BA" "1 busy byz leader"
    (weak (Attacks.wba_busy_byz_leaders ~cfg:(cfg n) ~leaders:[ 1 ]));
  row "weak BA" "3 busy byz leaders"
    (weak (Attacks.wba_busy_byz_leaders ~cfg:(cfg n) ~leaders:[ 1; 2; 3 ]));
  row "weak BA" "f = t crash (fallback)" (weak (crash_first 4));
  row "BB" "honest"
    (Instances.run_bb ~cfg:(cfg n) ~input:"v" ~adversary:honest ()).Instances.latency;
  row "strong BA" "honest"
    (Instances.run_strong_ba ~cfg:(cfg n) ~inputs:(Array.make n true)
       ~adversary:honest ())
      .Instances.latency;
  row "strong BA" "1 crash (fallback)"
    (Instances.run_strong_ba ~cfg:(cfg n) ~inputs:(Array.make n true)
       ~adversary:(crash_first 1) ())
      .Instances.latency;
  table

(* ---- ablations ----------------------------------------------------------- *)

let ablation_quorum () =
  let table =
    Ascii_table.create
      ~title:
        "[ABL-QUORUM] Why the quorum must be ceil((n+t+1)/2) (paper §6)\n\
         the same split-brain attack, run against both quorum choices"
      ~headers:[ "n"; "quorum"; "distinct decisions"; "verdict" ]
  in
  List.iter
    (fun n ->
      let c = cfg n in
      let attack q =
        Attacks.wba_small_quorum_split ~cfg:c ~quorum:q ~v1:"A" ~v2:"B"
      in
      let distinct ?quorum_override q =
        let o =
          Instances.run_weak_ba ~cfg:c ?quorum_override
            ~inputs:(Array.make n "input") ~adversary:(attack q) ()
        in
        Array.to_list o.Instances.decisions
        |> List.filteri (fun p _ -> not (List.mem p o.Instances.corrupted))
        |> List.filter_map Fun.id |> List.sort_uniq compare |> List.length
      in
      let small = Config.small_quorum c in
      let big = Config.big_quorum c in
      let d_small = distinct ~quorum_override:small small in
      let d_big = distinct big in
      Ascii_table.add_row table
        [
          string_of_int n;
          Printf.sprintf "t+1 = %d (ablated)" small;
          string_of_int d_small;
          (if d_small > 1 then "AGREEMENT BROKEN" else "held (unexpected)");
        ];
      Ascii_table.add_row table
        [
          string_of_int n;
          Printf.sprintf "ceil((n+t+1)/2) = %d" big;
          string_of_int d_big;
          (if d_big = 1 then "agreement held" else "BROKEN (bug!)");
        ])
    [ 9; 17 ];
  table

let ablation_resilience () =
  let table =
    Ascii_table.create
      ~title:
        "[ABL-RESILIENCE] Paper §8: the construction at resiliences beyond \
         n = 2t+1\n(unanimous inputs, f = t crashes - the worst crash count)"
      ~headers:
        [ "n"; "t"; "regime"; "big quorum"; "words"; "fallback runs"; "agreed" ]
  in
  List.iter
    (fun (n, t, regime) ->
      let c = Config.create ~n ~t in
      let o =
        Instances.run_weak_ba ~cfg:c ~inputs:(Array.make n "v")
          ~adversary:(crash_first t) ()
      in
      let decided =
        Array.to_list o.Instances.decisions
        |> List.filteri (fun p _ -> not (List.mem p o.Instances.corrupted))
        |> List.filter_map Fun.id |> List.sort_uniq compare
      in
      Ascii_table.add_row table
        [
          string_of_int n;
          string_of_int t;
          regime;
          string_of_int (Config.big_quorum c);
          string_of_int o.Instances.words;
          string_of_int o.Instances.fallback_runs;
          string_of_bool (List.length decided = 1);
        ])
    [
      (9, 4, "n = 2t+1 (optimal)");
      (13, 4, "n = 3t+1");
      (17, 4, "n = 4t+1");
      (21, 4, "n = 5t+1");
    ];
  table

module Ds_fallback = struct
  include Mewc_baselines.Ds_strong_ba.Make (Value.Str)

  type value = string
end

module Weak_over_ds = Weak_ba.Make (Value.Str) (Ds_fallback)

let ablation_fallback () =
  (* The A_fallback black box, swapped: the weak BA construction is
     indifferent, the words are not. *)
  let table =
    Ascii_table.create
      ~title:
        "[ABL-FALLBACK] Swapping the A_fallback black box (f = t crashes, \
         unanimous inputs)\nechophase-king uses threshold certificates; the \
         Dolev-Strong-based BA ships signature chains"
      ~headers:[ "n"; "fallback"; "words"; "agreed" ]
  in
  List.iter
    (fun n ->
      let c = cfg n in
      let t = c.Config.t in
      let victims = List.init t (fun i -> i + 1) in
      let epk =
        Instances.run_weak_ba ~cfg:c ~inputs:(Array.make n "v")
          ~adversary:(crash_first t) ()
      in
      Ascii_table.add_row table
        [
          string_of_int n;
          "echo phase king";
          string_of_int epk.Instances.words;
          "true";
        ];
      let pki, secrets = Mewc_crypto.Pki.setup ~seed:1L ~n () in
      let protocol pid =
        {
          Process.init =
            Weak_over_ds.init ~cfg:c ~pki ~secret:secrets.(pid) ~pid ~input:"v"
              ~validate:(fun _ -> true) ~start_slot:0 ();
          step = (fun ~slot ~inbox st -> Weak_over_ds.step ~slot ~inbox st);
          wake = None;
        }
      in
      let res =
        Engine.run ~cfg:c ~words:Weak_over_ds.words
          ~horizon:(Weak_over_ds.horizon c) ~protocol
          ~adversary:(Adversary.crash ~victims ()) ()
      in
      let decisions =
        Array.to_list res.Engine.states
        |> List.filteri (fun p _ -> not (List.mem p res.Engine.corrupted))
        |> List.filter_map Weak_over_ds.decision
        |> List.sort_uniq compare
      in
      Ascii_table.add_row table
        [
          string_of_int n;
          "Dolev-Strong BA";
          string_of_int (Meter.correct_words res.Engine.meter);
          string_of_bool (List.length decisions = 1);
        ])
    [ 9; 13; 17 ];
  table

(* ---- observability export ------------------------------------------------ *)

let observability_json () =
  (* The Table-1 rows at n = 21, re-run with the meter's per-slot and
     per-process series attached (schema mewc-meter/1 per run), so the word
     counts in the tables above can be broken down slot by slot offline. *)
  let n = 21 in
  let c = cfg n in
  let t = c.Config.t in
  let entry ~protocol ~spec (o : _ Instances.agreement_outcome) =
    Jsonx.Obj
      [
        ("protocol", Jsonx.Str protocol);
        ("n", Jsonx.Int n);
        ("t", Jsonx.Int t);
        ("f_spec", Jsonx.Str spec);
        ("f", Jsonx.Int o.Instances.f);
        ("words", Jsonx.Int o.Instances.words);
        ("messages", Jsonx.Int o.Instances.messages);
        ("latency", Jsonx.Int o.Instances.latency);
        ("slots", Jsonx.Int o.Instances.slots);
        ("meter", Meter.snapshot_to_json o.Instances.meter);
      ]
  in
  let runs =
    List.concat_map
      (fun spec ->
        let f = f_of_spec ~t spec in
        [
          entry ~protocol:"bb" ~spec
            (Instances.run_bb ~cfg:c ~input:"payload" ~adversary:(crash_first f) ());
          entry ~protocol:"weak-ba" ~spec
            (Instances.run_weak_ba ~cfg:c ~inputs:(Array.make n "v")
               ~adversary:(crash_first f) ());
          entry ~protocol:"strong-ba" ~spec
            (Instances.run_strong_ba ~cfg:c ~inputs:(Array.make n true)
               ~adversary:(crash_first f) ());
        ])
      fs
  in
  Jsonx.Schema.tag "mewc-observability/1"
    [
      ("experiment", Jsonx.Str "table1 per-slot word series, n=21");
      ("runs", Jsonx.Arr runs);
    ]

let all_tables () =
  [
    Ascii_table.render (table1_bb ());
    Ascii_table.render (table1_weak ());
    Ascii_table.render (table1_strong ());
    Ascii_table.render (table1_fit ());
    figure1 ();
    Ascii_table.render (claim_adaptivity ());
    Ascii_table.render (claim_failure_free ());
    Ascii_table.render (claim_fallback_threshold ());
    Ascii_table.render (claim_help_linear ());
    Ascii_table.render (baseline_comparison ());
    Ascii_table.render (signature_table ());
    Ascii_table.render (latency_table ());
    Ascii_table.render (ablation_quorum ());
    Ascii_table.render (ablation_resilience ());
    Ascii_table.render (ablation_fallback ());
  ]
