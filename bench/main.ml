(* `dune exec bench/main.exe` regenerates every table and figure of the
   paper (see DESIGN.md §3 for the experiment index), runs the perf sweep
   (sequential vs domain-parallel vs intra-run sharded, BENCH_perf.json,
   schema mewc-perf/2) and
   then Bechamel wall-clock benchmarks — one Test.make per Table-1 row.

   Flags:
     --no-timings   skip the Bechamel stage
     --jobs N       domains for the parallel perf pass (default: all cores)
     --smoke        CI gate: only the small perf grid, parallel vs
                    sequential, exit 1 if outputs differ (no files written)
     --frontier-smoke  CI gate for the event-driven engine: sweep the
                    frontier grid's n <= 101 points event-driven, then
                    replay them under the legacy lock-step oracle and exit
                    1 unless the rows are byte-identical
     --ledger FILE  append the perf sweep to the given mewc-ledger/1 file
     --rev REV      git revision to record in the ledger entry (the bench
                    never shells out; default "unknown")
     --date DATE    date to record in the ledger entry (default "unknown") *)

open Mewc_sim
open Mewc_core

let run_tables () =
  List.iter
    (fun rendered ->
      print_string rendered;
      print_newline ())
    (Experiments.all_tables ())

(* ---- Bechamel timings: one benchmark per Table-1 row -------------------- *)

let honest ~pki ~secrets =
  Adversary.const (Adversary.honest ~name:"honest") ~pki ~secrets

let crash_first f ~pki ~secrets =
  Adversary.const
    (Adversary.crash ~victims:(List.init f (fun i -> i + 1)) ())
    ~pki ~secrets

let cfg n = Config.optimal ~n

let bench_tests =
  let n = 21 in
  let t = (cfg n).Config.t in
  let open Bechamel in
  [
    Test.make ~name:"table1/bb n=21 f=0" (Staged.stage (fun () ->
        ignore (Instances.run_bb ~cfg:(cfg n) ~input:"v" ~adversary:honest ())));
    Test.make ~name:"table1/bb n=21 f=t" (Staged.stage (fun () ->
        ignore (Instances.run_bb ~cfg:(cfg n) ~input:"v" ~adversary:(crash_first t) ())));
    Test.make ~name:"table1/weak-ba n=21 f=0" (Staged.stage (fun () ->
        ignore
          (Instances.run_weak_ba ~cfg:(cfg n) ~inputs:(Array.make n "v")
             ~adversary:honest ())));
    Test.make ~name:"table1/weak-ba n=21 f=t" (Staged.stage (fun () ->
        ignore
          (Instances.run_weak_ba ~cfg:(cfg n) ~inputs:(Array.make n "v")
             ~adversary:(crash_first t) ())));
    Test.make ~name:"table1/strong-ba n=21 f=0" (Staged.stage (fun () ->
        ignore
          (Instances.run_strong_ba ~cfg:(cfg n) ~inputs:(Array.make n true)
             ~adversary:honest ())));
    Test.make ~name:"table1/strong-ba n=21 f=1" (Staged.stage (fun () ->
        ignore
          (Instances.run_strong_ba ~cfg:(cfg n) ~inputs:(Array.make n true)
             ~adversary:(crash_first 1) ())));
    Test.make ~name:"table1/a-fallback n=21 f=0" (Staged.stage (fun () ->
        ignore
          (Instances.run_fallback ~cfg:(cfg n) ~inputs:(Array.make n "v")
             ~adversary:honest ())));
    Test.make ~name:"baseline/dolev-strong n=21 f=0" (Staged.stage (fun () ->
        ignore
          (Mewc_baselines.Dolev_strong.run ~cfg:(cfg n) ~input:"v"
             ~adversary:honest ())));
  ]

let run_timings () =
  let open Bechamel in
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  let benchmark test =
    let cfg_b = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:(Some 100) () in
    Benchmark.all cfg_b instances test
  in
  let analyze results =
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
    in
    Analyze.all ols Toolkit.Instance.monotonic_clock results
  in
  print_endline "[PERF] Bechamel wall-clock per run (monotonic clock):";
  List.iter
    (fun test ->
      let results = benchmark (Test.make_grouped ~name:"t1" [ test ]) in
      let analysis = analyze results in
      Hashtbl.iter
        (fun name result ->
          match Bechamel.Analyze.OLS.estimates result with
          | Some [ est ] ->
            Printf.printf "  %-40s %12.0f ns/run\n%!" name est
          | Some _ | None -> Printf.printf "  %-40s (no estimate)\n%!" name)
        analysis)
    bench_tests

let write_observability () =
  let path = "BENCH_observability.json" in
  let oc = open_out path in
  output_string oc (Mewc_prelude.Jsonx.to_string (Experiments.observability_json ()));
  output_char oc '\n';
  close_out oc;
  Printf.printf "[OBS] wrote %s (per-slot word series for the Table-1 rows)\n%!"
    path

(* ---- perf baseline: sequential vs domain-parallel sweep ------------------ *)

let print_report (r : Sweep.report) =
  Printf.printf
    "[PERF-SWEEP] %d points, %d cores (%s), jobs=%d: sequential %.2fs, \
     parallel %.2fs, speedup %.2fx, parallel %s sequential\n%!"
    (List.length r.Sweep.rows) r.Sweep.cores r.Sweep.parallelism r.Sweep.jobs
    r.Sweep.sequential_s r.Sweep.parallel_s r.Sweep.speedup
    (if r.Sweep.identical then "==" else "!=");
  List.iter
    (fun (shards, wall) ->
      Printf.printf "[PERF-SWEEP]   shards=%-2d %.2fs\n%!" shards wall)
    r.Sweep.shard_wall_s;
  if r.Sweep.shard_wall_s <> [] then
    Printf.printf "[PERF-SWEEP]   sharded %s sequential\n%!"
      (if r.Sweep.shards_identical then "==" else "!=")

let run_perf ~jobs ~ledger ~rev ~date =
  let profile = Profile.create () in
  let report = Sweep.run_perf ?jobs ~profile Sweep.standard_grid in
  print_report report;
  print_string (Profile.flame profile);
  let path = "BENCH_perf.json" in
  let oc = open_out path in
  output_string oc (Mewc_prelude.Jsonx.to_string (Sweep.report_to_json report));
  output_char oc '\n';
  close_out oc;
  Printf.printf "[PERF-SWEEP] wrote %s (schema mewc-perf/2)\n%!" path;
  if not report.Sweep.identical then begin
    prerr_endline "[PERF-SWEEP] FATAL: parallel sweep diverged from sequential";
    exit 1
  end;
  if not report.Sweep.shards_identical then begin
    prerr_endline "[PERF-SWEEP] FATAL: sharded sweep diverged from sequential";
    exit 1
  end;
  match ledger with
  | None -> ()
  | Some path -> (
    let entry = Ledger.of_report ~rev ~date ~grid:"standard" ~profile report in
    match Ledger.append path entry with
    | Ok count ->
      Printf.printf "[PERF-SWEEP] appended %s@%s to %s (%d entries)\n%!" rev
        date path count
    | Error e ->
      Printf.eprintf "[PERF-SWEEP] FATAL: ledger append failed: %s\n" e;
      exit 1)

let run_smoke ~jobs =
  (* The CI gate: big enough to cross the fallback threshold, fast enough
     to run on every build. A divergence between the parallel and
     sequential pass — or any monitor violation inside a run — fails it. *)
  let jobs = match jobs with Some j -> Some j | None -> Some 2 in
  let report = Sweep.run_perf ?jobs ~shard_counts:[ 1; 2 ] Sweep.smoke_grid in
  print_report report;
  List.iter (fun r -> print_endline ("  " ^ Sweep.row_to_line r)) report.Sweep.rows;
  if not report.Sweep.identical then begin
    prerr_endline "[SMOKE] FATAL: parallel sweep diverged from sequential";
    exit 1
  end;
  if not report.Sweep.shards_identical then begin
    prerr_endline "[SMOKE] FATAL: sharded sweep diverged from sequential";
    exit 1
  end;
  print_endline
    "[SMOKE] ok: parallel and sharded sweeps byte-identical to sequential"

let run_frontier_smoke ~jobs =
  (* The event-driven engine's CI gate. Rows are a pure function of the
     point (each builds its own seed, PKI and RNG), so the legacy and
     event-driven engines must render every row byte-identically — the
     engine-diff test suite proves it per message, this gate re-proves it
     end to end on every build over the frontier grid's small points. *)
  let points, _capped = Sweep.frontier_grid `Event_driven in
  let points = List.filter (fun (p : Sweep.point) -> p.Sweep.n <= 101) points in
  let jobs = match jobs with Some j -> Some j | None -> Some 2 in
  let report =
    Sweep.run_perf ?jobs ~scheduler:`Event_driven ~shard_counts:[ 1; 2 ] points
  in
  print_report report;
  if not report.Sweep.identical then begin
    prerr_endline "[FRONTIER] FATAL: parallel sweep diverged from sequential";
    exit 1
  end;
  if not report.Sweep.shards_identical then begin
    prerr_endline "[FRONTIER] FATAL: sharded sweep diverged from sequential";
    exit 1
  end;
  let oracle =
    Sweep.run_all
      ~options:{ Instances.default_options with Instances.scheduler = `Legacy }
      points
  in
  let lines rows = List.map Sweep.row_to_line rows in
  if not (List.equal String.equal (lines report.Sweep.rows) (lines oracle))
  then begin
    prerr_endline
      "[FRONTIER] FATAL: event-driven rows diverged from the legacy oracle";
    exit 1
  end;
  Printf.printf
    "[FRONTIER] ok: %d event-driven points byte-identical to the legacy \
     oracle\n\
     %!"
    (List.length points)

let () =
  let argv = Array.to_list Sys.argv in
  let skip_timings = List.mem "--no-timings" argv in
  let smoke = List.mem "--smoke" argv in
  let string_flag name =
    let rec find = function
      | flag :: v :: _ when String.equal flag name -> Some v
      | _ :: rest -> find rest
      | [] -> None
    in
    find argv
  in
  let jobs =
    match string_flag "--jobs" with
    | None -> None
    | Some v -> (
      match int_of_string_opt v with
      | Some j when j >= 1 -> Some j
      | _ -> failwith "bench: --jobs expects a positive integer")
  in
  let ledger = string_flag "--ledger" in
  let rev = Option.value (string_flag "--rev") ~default:"unknown" in
  let date = Option.value (string_flag "--date") ~default:"unknown" in
  if List.mem "--frontier-smoke" argv then run_frontier_smoke ~jobs
  else if smoke then run_smoke ~jobs
  else begin
    run_tables ();
    write_observability ();
    run_perf ~jobs ~ledger ~rev ~date;
    if not skip_timings then run_timings ()
  end
